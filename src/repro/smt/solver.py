"""The SMT solver: CDCL(T) over EUF + linear arithmetic + sets + maps.

Pipeline (all for *ground* formulas -- the decidable fragment the paper's
methodology guarantees):

1. ``rewrite``: eliminate ``store``/``map_ite``/``select``-composition and
   distribute ``member`` over set algebra (array theory -> EUF).
2. purify non-boolean ``ite`` terms into fresh constants with guarded
   definitions.
3. ``reduce_sets``: finite pointwise reduction of set equalities/subsets.
4. split clauses for numeric equality atoms (``a=b or a<b or a>b``).
5. Tseitin CNF; every theory atom becomes a SAT variable.
6. CDCL search; each trail literal is asserted into the congruence closure
   and/or the simplex solver, which veto with explanation-based conflict
   clauses.
7. final check: integer branch-and-bound + model-based theory combination
   (equalities implied by the arithmetic model are tested against EUF and
   vice versa; disagreements become lemma clauses).

The solver refuses quantified input -- quantifiers simply cannot reach it
from ``repro.core.vcgen``, reproducing the paper's "decidable verification"
guarantee.  The RQ3 Dafny-style mode grounds quantifiers *before* calling
this solver (see ``repro.smt.quant``).

:class:`IncrementalSolver` is the persistent-context variant used by the
engine's VC batching: the VCs of one method share an enormous hypothesis
prefix (intrinsic-definition local conditions, FWYB frame axioms), so the
session asserts that prefix *once* -- one CNF encoding, one congruence
closure, one simplex tableau -- and then decides each per-VC goal under a
fresh activation-literal assumption (MiniSat-style incremental solving
lifted to CDCL(T)).  Learned clauses, theory lemmas and Tseitin encodings
carry over between goals; everything asserted permanently is either from
the shared prefix, definitional (ite guards), or theory-valid (set
reduction instances), so per-goal verdicts match a from-scratch solve.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from .euf import EufSolver
from .rewriter import rewrite
from .sat import SatSolver
from .setreduce import IncrementalSetReducer, reduce_sets
from .simplex import ArithSolver, Delta
from .sorts import BOOL, INT
from .terms import (
    FALSE,
    TRUE,
    Term,
    deep_recursion,
    fresh_const,
    iter_subterms,
    mk_and,
    mk_eq,
    mk_implies,
    mk_int,
    mk_le,
    mk_lt,
    mk_not,
)

__all__ = [
    "Solver",
    "IncrementalSolver",
    "SolverError",
    "NonLinearError",
    "QuantifiedFormulaError",
    "is_valid",
]


class SolverError(Exception):
    pass


class NonLinearError(SolverError):
    """Raised on nonlinear arithmetic (undecidable; footnote 1 of the paper)."""


class QuantifiedFormulaError(SolverError):
    """The decidable pipeline received a quantifier."""


class BudgetExceeded(SolverError):
    pass


_ARITH_LEAF_OPS = ("add", "sub", "neg", "mul", "div", "intconst", "realconst")

_BOOL_CONNECTIVES = ("and", "or", "not", "implies")


def _purify_term(formula: Term, cache: Dict[Term, Term], defs: List[Term]) -> Term:
    """One purification walk: replace non-boolean ``ite`` terms by fresh
    constants, appending the guarded definitions to ``defs``.  ``cache``
    may persist across calls (the incremental session reuses it so shared
    subterms keep their purification constants between goals)."""
    from .terms import _rebuild

    def walk(t: Term) -> Term:
        got = cache.get(t)
        if got is not None:
            return got
        if t.args:
            new_args = tuple(walk(a) for a in t.args)
            t2 = _rebuild(t, new_args) if new_args != t.args else t
        else:
            t2 = t
        if t2.op == "ite" and t2.sort != BOOL:
            c, a, b = t2.args
            v = fresh_const("ite", t2.sort)
            defs.append(mk_implies(c, mk_eq(v, a)))
            defs.append(mk_implies(mk_not(c), mk_eq(v, b)))
            t2 = v
        cache[t] = t2
        return t2

    return walk(formula)


class _TheoryManager:
    """Bridges the SAT core with the EUF and arithmetic solvers."""

    def __init__(self, solver: "Solver"):
        self.solver = solver
        self.euf = EufSolver()
        self.arith = ArithSolver()
        self.arith_var_of: Dict[Term, int] = {}
        self.term_of_arith_var: Dict[int, Term] = {}
        # atom dispatch tables, indexed by SAT var
        self.atom_of_var: Dict[int, Term] = {}
        self.var_of_atom: Dict[Term, int] = {}
        # arith bound actions per atom var: (pos_bounds, neg_bounds)
        self.bounds_of_var: Dict[int, Tuple[list, list]] = {}
        self.euf_kind_of_var: Dict[int, str] = {}  # 'eq' | 'pred'
        self.marks: List[Tuple[int, int]] = []
        self.bb_rounds = 0
        self.max_bb_rounds = 2000
        self.euf.register(TRUE)
        self.euf.register(FALSE)

    # -- atom registration -------------------------------------------------

    def register_atom(self, atom: Term, var: int) -> None:
        self.atom_of_var[var] = atom
        self.var_of_atom[atom] = var
        if atom.op in ("le", "lt"):
            a, b = atom.args
            pos = self._bound_actions(a, b, strict=(atom.op == "lt"), negated=False)
            negb = self._bound_actions(a, b, strict=(atom.op == "lt"), negated=True)
            self.bounds_of_var[var] = (pos, negb)
        elif atom.op == "eq":
            sort = atom.args[0].sort
            if sort == BOOL:
                raise SolverError("boolean equality must be handled as iff in CNF")
            self.euf_kind_of_var[var] = "eq"
            self.euf.register(atom.args[0])
            self.euf.register(atom.args[1])
            if sort.is_numeric:
                a, b = atom.args
                le1 = self._bound_actions(a, b, strict=False, negated=False)
                le2 = self._bound_actions(b, a, strict=False, negated=False)
                self.bounds_of_var[var] = (le1 + le2, [])
        elif atom.op in ("member", "subset", "all_ge", "all_le", "select", "apply", "const"):
            self.euf_kind_of_var[var] = "pred"
            self.euf.register(atom)
        else:
            raise SolverError(f"unsupported atom: {atom.op}")

    def _linearize(self, term: Term):
        """Return (poly: dict var->Fraction, const: Fraction)."""
        poly: Dict[int, Fraction] = {}
        const = [Fraction(0)]

        def add(t: Term, coeff: Fraction):
            if t.op == "intconst" or t.op == "realconst":
                const[0] += coeff * t.value
            elif t.op == "add":
                for a in t.args:
                    add(a, coeff)
            elif t.op == "sub":
                add(t.args[0], coeff)
                add(t.args[1], -coeff)
            elif t.op == "neg":
                add(t.args[0], -coeff)
            elif t.op == "mul":
                a, b = t.args
                if a.is_literal_const:
                    add(b, coeff * a.value)
                elif b.is_literal_const:
                    add(a, coeff * b.value)
                else:
                    raise NonLinearError(f"nonlinear multiplication: {t}")
            elif t.op == "div":
                add(t.args[0], coeff / t.args[1].value)
            else:
                v = self._arith_var(t)
                poly[v] = poly.get(v, Fraction(0)) + coeff
                if poly[v] == 0:
                    del poly[v]
        add(term, Fraction(1))
        return poly, const[0]

    def _arith_var(self, t: Term) -> int:
        v = self.arith_var_of.get(t)
        if v is None:
            v = self.arith.new_var(is_int=(t.sort == INT))
            self.arith_var_of[t] = v
            self.term_of_arith_var[v] = t
            # Register in EUF too so congruence-implied equalities are
            # visible to the combination machinery.
            self.euf.register(t)
        return v

    def _bound_actions(self, a: Term, b: Term, strict: bool, negated: bool) -> list:
        """Bound assertions for (a < b), (a <= b) or their negations as a
        list of (arith_var, kind, Delta)."""
        poly_a, ka = self._linearize(a)
        poly_b, kb = self._linearize(b)
        poly = dict(poly_a)
        for v, c in poly_b.items():
            poly[v] = poly.get(v, Fraction(0)) - c
            if poly[v] == 0:
                del poly[v]
        k = ka - kb  # atom: poly + k (<|<=) 0
        if negated:
            # not (a <= b)  <=>  poly + k > 0 ; not (a < b) <=> poly + k >= 0
            strict = not strict
            lower = True
        else:
            lower = False
        if not poly:
            # Constant atom: encode as trivially true/false bound on a dummy.
            if lower:
                truth = (k > 0) if strict else (k >= 0)
            else:
                truth = (k < 0) if strict else (k <= 0)
            return [("const", truth)]
        sv, gamma = self.arith.slack_for(poly)
        c = Fraction(-k) / gamma
        if gamma < 0:
            lower = not lower
        if self.arith.is_int[sv]:
            # Integer bound tightening: strict and fractional bounds round to
            # the nearest integer bound, which keeps simplex models integral
            # and starves branch-and-bound of work.
            if lower:
                if strict or c.denominator != 1:
                    c = Fraction(c.numerator // c.denominator + 1)
                return [(sv, "ge", Delta(c))]
            if strict or c.denominator != 1:
                num, den = c.numerator, c.denominator
                floor = num // den
                c = Fraction(floor - 1 if (strict and den == 1) else floor)
            return [(sv, "le", Delta(c))]
        if lower:
            bound = Delta(c, Fraction(1) if strict else Fraction(0))
            return [(sv, "ge", bound)]
        bound = Delta(c, Fraction(-1) if strict else Fraction(0))
        return [(sv, "le", bound)]

    # -- SAT-driven callbacks ----------------------------------------------

    def assert_lit(self, lit: int) -> Optional[List[int]]:
        self.marks.append((self.euf.mark(), self.arith.mark()))
        var = lit >> 1
        positive = (lit & 1) == 0
        atom = self.atom_of_var.get(var)
        if atom is None:
            return None
        conflict: Optional[List[int]] = None
        kind = self.euf_kind_of_var.get(var)
        if kind == "eq":
            a, b = atom.args
            if positive:
                conflict = self.euf.assert_eq(a, b, lit)
            else:
                conflict = self.euf.assert_diseq(a, b, lit)
        elif kind == "pred":
            target = TRUE if positive else FALSE
            conflict = self.euf.assert_eq(atom, target, lit)
        if conflict is not None:
            return self._clause_from(conflict)
        bounds = self.bounds_of_var.get(var)
        if bounds is not None:
            actions = bounds[0] if positive else bounds[1]
            for action in actions:
                if action[0] == "const":
                    if not action[1]:
                        return [lit ^ 1]
                    continue
                sv, bkind, delta = action
                conflict = self.arith.assert_bound(sv, bkind, delta, lit)
                if conflict is not None:
                    return self._clause_from(conflict + [lit] if lit not in conflict else conflict)
            conflict = self.arith.check()
            if conflict is not None:
                return self._clause_from(conflict)
        return None

    def backjump(self, trail_size: int) -> None:
        while len(self.marks) > trail_size:
            em, am = self.marks.pop()
            self.euf.undo_to(em)
            self.arith.undo_to(am)

    def _clause_from(self, true_lits: List[int]) -> List[int]:
        seen = []
        for l in true_lits:
            if l not in seen:
                seen.append(l)
        return [l ^ 1 for l in seen]

    # -- final check: integers + theory combination -------------------------

    def final_check(self):
        conflict = self.arith.check()
        if conflict is not None:
            return self._clause_from(conflict)
        self.bb_rounds += 1
        if self.bb_rounds > self.max_bb_rounds:
            raise BudgetExceeded("branch-and-bound budget exceeded")
        model = self.arith.concrete_model()
        lemmas: List[List[int]] = []
        # 1. Integer branch-and-bound on term-backed int variables.
        for t, v in list(self.arith_var_of.items()):
            if t.sort == INT:
                val = model[v]
                if val.denominator != 1:
                    floor = val.numerator // val.denominator
                    below = self._get_atom_lit(mk_le(t, mk_int(floor)))
                    above = self._get_atom_lit(mk_le(mk_int(floor + 1), t))
                    lemmas.append([below, above])
        if lemmas:
            return lemmas
        # 2. Model-based combination: shared numeric terms.
        shared = [t for t in self.arith_var_of if t in self.euf.rep]
        # 2a. EUF-equal shared terms must get equal arithmetic values.
        by_class: Dict[Term, List[Term]] = {}
        for t in shared:
            by_class.setdefault(self.euf.find(t), []).append(t)
        for cls in by_class.values():
            if len(cls) < 2:
                continue
            base = cls[0]
            for other in cls[1:]:
                if model[self.arith_var_of[base]] != model[self.arith_var_of[other]]:
                    expl = self.euf.explain(base, other)
                    eq_lit = self._get_atom_lit(mk_eq(base, other))
                    # EUF-valid lemma: explanation implies the equality atom,
                    # whose truth the arithmetic side then has to honour.
                    lemmas.append([l ^ 1 for l in expl] + [eq_lit])
        if lemmas:
            return lemmas
        # 2b. arith-model-equal shared terms must be mergeable in EUF.
        # Grouped per sort: equality atoms are only well-sorted between
        # same-sort terms (an Int and a Real can share a model value,
        # especially in a long-lived incremental context).
        by_value: Dict[tuple, List[Term]] = {}
        for t in shared:
            by_value.setdefault((t.sort, model[self.arith_var_of[t]]), []).append(t)
        mark = self.euf.mark()
        for group in by_value.values():
            if len(group) < 2:
                continue
            base = group[0]
            for other in group[1:]:
                if self.euf.are_equal(base, other):
                    continue
                confl = self.euf.assert_eq(base, other, None)
                if confl is not None:
                    # EUF refuses this equality: split on it explicitly.
                    eq_lit = self._get_atom_lit(mk_eq(base, other))
                    lemmas.append([l ^ 1 for l in confl] + [eq_lit ^ 1])
                    break
            if lemmas:
                break
        self.euf.undo_to(mark)
        if lemmas:
            return lemmas
        return None

    def _get_atom_lit(self, atom: Term) -> int:
        """Positive SAT literal for an atom, creating it (with split clauses
        for numeric equalities) if needed."""
        if atom is TRUE:
            return self.solver.true_lit
        if atom is FALSE:
            return self.solver.true_lit ^ 1
        var = self.var_of_atom.get(atom)
        if var is None:
            var = self.solver.sat.new_var()
            self.register_atom(atom, var)
            if atom.op == "eq" and atom.args[0].sort.is_numeric:
                self.solver._add_numeric_eq_split(atom, var)
        return 2 * var


class Solver:
    """Public quantifier-free SMT solver interface."""

    def __init__(
        self, conflict_budget: Optional[int] = None, assume_rewritten: bool = False
    ):
        """``assume_rewritten`` declares the assertions already in
        rewrite-normal form (the output of :func:`repro.smt.rewriter.rewrite`
        or :func:`repro.smt.simplify.simplify` thereof), skipping the
        array-elimination pass.  The simplification pipeline preserves
        rewrite-normality, so pre-simplified VCs take this fast path."""
        self.assertions: List[Term] = []
        self.conflict_budget = conflict_budget
        self.assume_rewritten = assume_rewritten
        self.stats: Dict[str, float] = {}
        self.sat = None
        self.manager = None
        self.true_lit = None
        self._formula_vars: Dict[Term, int] = {}

    def add(self, term: Term) -> None:
        if term.sort != BOOL:
            raise SolverError("assertions must be boolean")
        self.assertions.append(term)

    def _fresh_context(self) -> None:
        """(Re)initialize the SAT core + theory manager + true literal."""
        self.sat = SatSolver()
        self.manager = _TheoryManager(self)
        self.sat.theory = self.manager
        tv = self.sat.new_var()
        self.true_lit = 2 * tv
        self.sat.add_clause([self.true_lit])
        self._formula_vars = {}

    # -- preprocessing ------------------------------------------------------

    def _purify_ites(self, formula: Term) -> Term:
        """Replace non-boolean ite terms by fresh constants with guarded
        definitions (boolean ites were already eliminated at construction)."""
        defs: List[Term] = []
        cache: Dict[Term, Term] = {}
        out = _purify_term(formula, cache, defs)
        while defs:
            pending = defs[:]
            defs.clear()
            out = mk_and(out, *[_purify_term(d, cache, defs) for d in pending])
        return out

    def _check_ground(self, formula: Term) -> None:
        for t in iter_subterms(formula):
            if t.op == "forall" or t.op == "var":
                raise QuantifiedFormulaError(
                    "quantified formula reached the decidable solver: " + t.pretty()[:200]
                )

    # -- CNF ------------------------------------------------------------

    def _formula_lit(self, t: Term) -> int:
        if t is TRUE:
            return self.true_lit
        if t is FALSE:
            return self.true_lit ^ 1
        if t.op == "not":
            return self._formula_lit(t.args[0]) ^ 1
        cached = self._formula_vars.get(t)
        if cached is not None:
            return 2 * cached
        if t.op in ("and", "or"):
            v = self.sat.new_var()
            self._formula_vars[t] = v
            plit = 2 * v
            arg_lits = [self._formula_lit(a) for a in t.args]
            if t.op == "and":
                for al in arg_lits:
                    self.sat.add_clause([plit ^ 1, al])
                self.sat.add_clause([plit] + [al ^ 1 for al in arg_lits])
            else:
                for al in arg_lits:
                    self.sat.add_clause([plit, al ^ 1])
                self.sat.add_clause([plit ^ 1] + arg_lits)
            return plit
        if t.op == "implies":
            a = self._formula_lit(t.args[0])
            b = self._formula_lit(t.args[1])
            v = self.sat.new_var()
            self._formula_vars[t] = v
            plit = 2 * v
            self.sat.add_clause([plit ^ 1, a ^ 1, b])
            self.sat.add_clause([plit, a])
            self.sat.add_clause([plit, b ^ 1])
            return plit
        if t.op == "eq" and t.args[0].sort == BOOL:
            a = self._formula_lit(t.args[0])
            b = self._formula_lit(t.args[1])
            v = self.sat.new_var()
            self._formula_vars[t] = v
            plit = 2 * v
            self.sat.add_clause([plit ^ 1, a ^ 1, b])
            self.sat.add_clause([plit ^ 1, a, b ^ 1])
            self.sat.add_clause([plit, a, b])
            self.sat.add_clause([plit, a ^ 1, b ^ 1])
            return plit
        # Theory atom.
        v = self.sat.new_var()
        self._formula_vars[t] = v
        self.manager.register_atom(t, v)
        if t.op == "eq" and t.args[0].sort.is_numeric:
            self._add_numeric_eq_split(t, v)
        return 2 * v

    def _add_numeric_eq_split(self, atom: Term, var: int) -> None:
        a, b = atom.args
        lt1 = self._formula_lit(mk_lt(a, b))
        lt2 = self._formula_lit(mk_lt(b, a))
        self.sat.add_clause([2 * var, lt1, lt2])
        self.sat.add_clause([2 * var + 1, lt1 ^ 1])
        self.sat.add_clause([2 * var + 1, lt2 ^ 1])

    # -- main entry ------------------------------------------------------

    def check(self) -> str:
        """Returns 'sat' or 'unsat' (raises on budget exhaustion)."""
        formula = mk_and(*self.assertions) if self.assertions else TRUE
        if not self.assume_rewritten:
            formula = rewrite(formula)
        self._check_ground(formula)
        formula = self._purify_ites(formula)
        formula = reduce_sets(formula)
        if formula is FALSE:
            return "unsat"
        self._fresh_context()
        root = self._formula_lit(formula)
        self.sat.add_clause([root])
        result = self.sat.solve(conflict_budget=self.conflict_budget)
        if result is None:
            raise BudgetExceeded("conflict budget exceeded")
        self.stats["conflicts"] = self.sat.n_conflicts
        self.stats["vars"] = len(self.sat.assigns)
        self.stats["clauses"] = len(self.sat.clauses)
        return "sat" if result else "unsat"

    def model_atoms(self) -> Dict[Term, bool]:
        """Truth values of the original theory atoms (for countermodels)."""
        out = {}
        if self.manager is None:
            return out
        for var, atom in self.manager.atom_of_var.items():
            val = self.sat.assigns[var]
            if val is not None:
                out[atom] = val
        return out


class IncrementalSolver(Solver):
    """Persistent-context CDCL(T) session (assert once, check many).

    Usage::

        inc = IncrementalSolver(conflict_budget=..., assume_rewritten=True)
        for hyp in shared_prefix:
            inc.add_shared(hyp)           # asserted once, permanently
        for goal in goals:
            status = inc.check_goal(goal)  # 'sat' | 'unsat'

    ``check_goal(g)`` decides satisfiability of ``shared /\\ g`` -- to
    check validity of ``prefix -> R``, pass ``mk_not(R)``.  Each goal is
    encoded under a fresh activation literal, checked via
    ``solve(assumptions=[act])``, then retired with a permanent unit
    ``~act``, so goals never constrain each other.  Side conditions
    produced by preprocessing (ite purification guards, finite set
    reduction instances) are asserted *permanently*: they are
    definitional or theory-valid, hence harmless to every other goal,
    and asserting them unguarded is what keeps the accumulated element
    universe complete when later goals mention the same element terms.
    """

    #: Retired-goal garbage collection: a retired goal's Tseitin clauses
    #: and theory-atom registrations stay in the persistent context, and
    #: every later ``solve`` re-propagates them (and re-asserts their
    #: atoms into EUF/simplex on each decision), so an unbounded batch
    #: slows down linearly in *retired* work.  When the variables
    #: attributable to retired goals exceed ``gc_ratio`` times the shared
    #: prefix's own variables (and the ``gc_min_vars`` floor), the
    #: context is rebuilt from the recorded shared prefix alone --
    #: exactly the state a fresh solver would build, so verdicts are
    #: unaffected.  This is what lets the engine's ``batch_node_limit``
    #: default far above the old 200-node ceiling.
    GC_MIN_VARS = 2000

    def __init__(
        self,
        conflict_budget: Optional[int] = None,
        assume_rewritten: bool = False,
        gc_ratio: float = 1.0,
    ):
        super().__init__(
            conflict_budget=conflict_budget, assume_rewritten=assume_rewritten
        )
        self._fresh_context()
        self._purify_cache: Dict[Term, Term] = {}
        self._reducer = IncrementalSetReducer()
        self.n_checks = 0
        self.gc_ratio = gc_ratio
        self.n_gc = 0  # context rebuilds performed
        self._shared: List[Term] = []
        self._base_vars: Optional[int] = None  # var count after the prefix
        self._retired_vars = 0  # vars attributable to retired goals

    def _assert_permanent(self, term: Term) -> None:
        self.sat._cancel_until(0)
        self.sat.add_clause([self._formula_lit(term)])

    def _reduce_and_assert_deltas(self, term: Term) -> None:
        """Feed ``term`` to the incremental set reducer and permanently
        assert whatever pointwise instances the universe now needs."""
        for constraint in self._reducer.add(term):
            self._assert_permanent(constraint)

    def _ingest(self, term: Term) -> int:
        """Preprocess one boolean term into the shared context and return
        its CNF literal.  Emitted side constraints are asserted permanently."""
        if term.sort != BOOL:
            raise SolverError("assertions must be boolean")
        with deep_recursion():
            if not self.assume_rewritten:
                term = rewrite(term)
            self._check_ground(term)
            defs: List[Term] = []
            term = _purify_term(term, self._purify_cache, defs)
            while defs:
                pending = defs[:]
                defs.clear()
                for d in pending:
                    d = _purify_term(d, self._purify_cache, defs)
                    # Guard definitions can mention set-sorted terms (a
                    # purified set ite yields a set equality), so they go
                    # through the reducer exactly like user assertions --
                    # the one-shot pipeline reduces *after* purification
                    # over the whole conjunction.
                    self._reduce_and_assert_deltas(d)
                    self._assert_permanent(d)
            self._reduce_and_assert_deltas(term)
            return self._formula_lit(term)

    def add_shared(self, term: Term) -> None:
        """Assert ``term`` into the persistent context (the VC prefix)."""
        self._shared.append(term)
        self._base_vars = None  # prefix still growing: re-baseline later
        self.sat._cancel_until(0)
        lit = self._ingest(term)
        self.sat.add_clause([lit])

    def _collect_retired(self) -> None:
        """Rebuild the context from the shared prefix alone, dropping the
        retired goals' clauses, atoms and theory state."""
        self._fresh_context()
        self._purify_cache = {}
        self._reducer = IncrementalSetReducer()
        self._retired_vars = 0
        self._base_vars = None
        self.n_gc += 1
        for term in self._shared:
            self.sat._cancel_until(0)
            lit = self._ingest(term)
            self.sat.add_clause([lit])

    def check_goal(self, goal: Term) -> str:
        """Decide satisfiability of ``shared /\\ goal``; context survives."""
        if self._base_vars is not None and self._retired_vars > max(
            self.GC_MIN_VARS, self.gc_ratio * self._base_vars
        ):
            self._collect_retired()
        if self._base_vars is None:
            self._base_vars = len(self.sat.assigns)
        vars_before = len(self.sat.assigns)
        self.sat._cancel_until(0)
        lit = self._ingest(goal)
        act = self.sat.new_var()
        self.sat.add_clause([2 * act + 1, lit])
        self.manager.bb_rounds = 0
        self.n_checks += 1
        result = self.sat.solve(
            conflict_budget=self.conflict_budget, assumptions=[2 * act]
        )
        self.sat._cancel_until(0)
        self.sat.add_clause([2 * act + 1])  # retire the goal
        self._retired_vars += len(self.sat.assigns) - vars_before
        if result is None:
            raise BudgetExceeded("conflict budget exceeded")
        self.stats["conflicts"] = self.sat.n_conflicts
        self.stats["vars"] = len(self.sat.assigns)
        self.stats["clauses"] = len(self.sat.clauses)
        return "sat" if result else "unsat"


def is_valid(formula: Term, conflict_budget: Optional[int] = None):
    """Check validity of a ground formula.  Returns (bool, Solver)."""
    solver = Solver(conflict_budget=conflict_budget)
    solver.add(mk_not(formula))
    result = solver.check()
    return result == "unsat", solver
