"""Hash-consed term DAG for the quantifier-free SMT language.

Every term is an immutable, interned :class:`Term`.  Interning makes
structural equality a pointer comparison and lets the solver use terms as
dictionary keys cheaply -- both matter because verification conditions share
enormous amounts of structure (SSA snapshots of the same heap maps).

The operator set covers exactly the combination of theories the paper's
verification conditions need (Section 3.7):

- boolean structure (``and`` / ``or`` / ``not`` / ``implies`` / ``ite``),
- equality and disequality over all sorts (EUF),
- linear integer/real arithmetic,
- finite sets (union, intersection, difference, singleton, membership,
  subset),
- maps with ``select`` / ``store`` and the *pointwise* ``map_ite`` update of
  the generalized array theory (used for frame conditions across calls),
- uninterpreted functions/constants,
- ``forall`` (only for the RQ3 "quantified/Dafny-style" encoding; the
  decidable pipeline rejects it -- see ``printer.assert_quantifier_free``).
"""

from __future__ import annotations

import sys
from contextlib import contextmanager
from fractions import Fraction
from hashlib import blake2b
from typing import Iterable, Iterator, Optional, Sequence

from .sorts import BOOL, INT, LOC, REAL, MapSort, SetSort, Sort

__all__ = [
    "Term",
    "TRUE",
    "FALSE",
    "NIL",
    "mk_true",
    "mk_false",
    "mk_bool",
    "mk_int",
    "mk_real",
    "mk_const",
    "mk_var",
    "mk_apply",
    "mk_not",
    "mk_and",
    "mk_or",
    "mk_implies",
    "mk_iff",
    "mk_eq",
    "mk_ne",
    "mk_distinct",
    "mk_ite",
    "mk_add",
    "mk_sub",
    "mk_neg",
    "mk_mul",
    "mk_div",
    "mk_le",
    "mk_lt",
    "mk_ge",
    "mk_gt",
    "mk_empty_set",
    "mk_singleton",
    "mk_union",
    "mk_inter",
    "mk_setdiff",
    "mk_member",
    "mk_subset",
    "mk_all_ge",
    "mk_all_le",
    "mk_select",
    "mk_store",
    "mk_map_ite",
    "mk_forall",
    "fresh_const",
    "substitute",
    "iter_subterms",
    "collect",
    "deep_recursion",
]


@contextmanager
def deep_recursion(limit: int = 20000):
    """Raise the interpreter recursion limit for VC-depth term walks.

    Verification conditions are deep implication towers; every recursive
    traversal over them (rewrite, simplify, printing) runs under this
    guard.  Nesting is harmless and the previous limit is restored."""
    previous = sys.getrecursionlimit()
    if previous < limit:
        sys.setrecursionlimit(limit)
    try:
        yield
    finally:
        sys.setrecursionlimit(previous)


class SortError(TypeError):
    """Raised when a term constructor is applied at the wrong sorts."""


class Term:
    """An interned node of the term DAG.

    Attributes:
        op: operator tag (e.g. ``"and"``, ``"select"``, ``"const"``).
        args: child terms.
        sort: the term's sort.
        name: symbol name for ``const`` / ``var`` / ``apply``.
        value: literal value for ``intconst`` / ``realconst`` / ``boolconst``.
        binders: bound variables for ``forall``.
    """

    # ``_tsize`` / ``_fv`` are *lazily* filled caches (capped tree size and
    # free-constant leaf set) owned by :mod:`repro.smt.simplify`.  Storing
    # them on the interned node bounds their lifetime by the intern table
    # itself instead of a second, separately-growing module-global dict.
    __slots__ = (
        "op", "args", "sort", "name", "value", "binders",
        "_hash", "_id", "_fp", "_tsize", "_fv",
    )

    _intern: dict = {}
    _next_id = 0

    def __new__(
        cls,
        op: str,
        args: tuple = (),
        sort: Sort = BOOL,
        name: Optional[str] = None,
        value=None,
        binders: tuple = (),
    ):
        key = (op, args, sort, name, value, binders)
        cached = cls._intern.get(key)
        if cached is not None:
            return cached
        self = object.__new__(cls)
        self.op = op
        self.args = args
        self.sort = sort
        self.name = name
        self.value = value
        self.binders = binders
        self._hash = hash(key)
        self._id = Term._next_id
        Term._next_id += 1
        # Structural fingerprint: a content hash independent of interning
        # order, unlike `_id` (which counts global construction order and
        # therefore differs between processes that built other terms
        # first).  Every *canonical-ordering* decision -- `mk_eq` argument
        # order, the simplifier's conjunct sorting and equality
        # orientation -- keys on `_fp`, so the canonical serialization of
        # a formula (and hence the engine's cache key) is reproducible
        # across runs and method selections.  blake2b, not `hash()`:
        # string hashing is randomized per process.
        digest = blake2b(digest_size=8)
        digest.update(f"{op}\x1f{name}\x1f{value!r}\x1f{sort.name}\x1f".encode())
        for child in args:
            digest.update(child._fp.to_bytes(8, "big"))
        digest.update(b"\x1e")
        for child in binders:
            digest.update(child._fp.to_bytes(8, "big"))
        self._fp = int.from_bytes(digest.digest(), "big")
        cls._intern[key] = self
        return self

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other) -> bool:
        return self is other

    def __repr__(self) -> str:
        return self.pretty()

    def pretty(self) -> str:
        if self.op == "boolconst":
            return "true" if self.value else "false"
        if self.op in ("intconst", "realconst"):
            return str(self.value)
        if self.op in ("const", "var"):
            return str(self.name)
        if self.op == "apply":
            inner = " ".join(a.pretty() for a in self.args)
            return f"({self.name} {inner})"
        if self.op == "forall":
            bound = " ".join(f"({v.name} {v.sort})" for v in self.binders)
            return f"(forall ({bound}) {self.args[0].pretty()})"
        inner = " ".join(a.pretty() for a in self.args)
        return f"({self.op} {inner})" if inner else f"({self.op})"

    @property
    def is_literal_const(self) -> bool:
        return self.op in ("boolconst", "intconst", "realconst")


# ---------------------------------------------------------------------------
# Atomic constructors
# ---------------------------------------------------------------------------

TRUE = Term("boolconst", value=True, sort=BOOL)
FALSE = Term("boolconst", value=False, sort=BOOL)


def mk_true() -> Term:
    return TRUE


def mk_false() -> Term:
    return FALSE


def mk_bool(b: bool) -> Term:
    return TRUE if b else FALSE


def mk_int(value) -> Term:
    return Term("intconst", value=Fraction(value), sort=INT)


def mk_real(value) -> Term:
    return Term("realconst", value=Fraction(value), sort=REAL)


def mk_const(name: str, sort: Sort) -> Term:
    """A free constant (nullary uninterpreted symbol)."""
    return Term("const", name=name, sort=sort)


def mk_var(name: str, sort: Sort) -> Term:
    """A bound variable (only appears under ``forall``)."""
    return Term("var", name=name, sort=sort)


def mk_apply(name: str, args: Sequence[Term], sort: Sort) -> Term:
    """Uninterpreted function application."""
    return Term("apply", args=tuple(args), name=name, sort=sort)


NIL = mk_const("nil", LOC)


_fresh_counter = [0]


def fresh_const(prefix: str, sort: Sort) -> Term:
    _fresh_counter[0] += 1
    return mk_const(f"{prefix}!{_fresh_counter[0]}", sort)


# ---------------------------------------------------------------------------
# Boolean structure (with light constant folding to keep VCs small)
# ---------------------------------------------------------------------------


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise SortError(message)


def mk_not(a: Term) -> Term:
    _require(a.sort == BOOL, f"not: expected Bool, got {a.sort}")
    if a is TRUE:
        return FALSE
    if a is FALSE:
        return TRUE
    if a.op == "not":
        return a.args[0]
    return Term("not", (a,), BOOL)


def _flatten(op: str, args: Iterable[Term]) -> list:
    out = []
    for a in args:
        if a.op == op:
            out.extend(a.args)
        else:
            out.append(a)
    return out


def mk_and(*args: Term) -> Term:
    flat = _flatten("and", args)
    kept = []
    for a in flat:
        _require(a.sort == BOOL, f"and: expected Bool, got {a.sort}")
        if a is FALSE:
            return FALSE
        if a is not TRUE and a not in kept:
            kept.append(a)
    if not kept:
        return TRUE
    if len(kept) == 1:
        return kept[0]
    return Term("and", tuple(kept), BOOL)


def mk_or(*args: Term) -> Term:
    flat = _flatten("or", args)
    kept = []
    for a in flat:
        _require(a.sort == BOOL, f"or: expected Bool, got {a.sort}")
        if a is TRUE:
            return TRUE
        if a is not FALSE and a not in kept:
            kept.append(a)
    if not kept:
        return FALSE
    if len(kept) == 1:
        return kept[0]
    return Term("or", tuple(kept), BOOL)


def mk_implies(a: Term, b: Term) -> Term:
    _require(a.sort == BOOL and b.sort == BOOL, "implies: expected Bool operands")
    if a is TRUE:
        return b
    if a is FALSE or b is TRUE:
        return TRUE
    if b is FALSE:
        return mk_not(a)
    return Term("implies", (a, b), BOOL)


def mk_iff(a: Term, b: Term) -> Term:
    return mk_eq(a, b)


def mk_eq(a: Term, b: Term) -> Term:
    _require(a.sort == b.sort, f"eq: sort mismatch {a.sort} vs {b.sort}")
    if a is b:
        return TRUE
    if a.is_literal_const and b.is_literal_const:
        return mk_bool(a.value == b.value)
    # Canonical argument order so `eq(a, b)` and `eq(b, a)` intern
    # identically -- by structural fingerprint (process-independent), with
    # the interning id as a collision tie-break.
    if (b._fp, b._id) < (a._fp, a._id):
        a, b = b, a
    return Term("eq", (a, b), BOOL)


def mk_ne(a: Term, b: Term) -> Term:
    return mk_not(mk_eq(a, b))


def mk_distinct(*args: Term) -> Term:
    terms = list(args)
    parts = []
    for i in range(len(terms)):
        for j in range(i + 1, len(terms)):
            parts.append(mk_ne(terms[i], terms[j]))
    return mk_and(*parts)


def mk_ite(cond: Term, then: Term, els: Term) -> Term:
    _require(cond.sort == BOOL, "ite: condition must be Bool")
    _require(then.sort == els.sort, f"ite: branch sorts differ {then.sort} vs {els.sort}")
    if cond is TRUE:
        return then
    if cond is FALSE:
        return els
    if then is els:
        return then
    if then.sort == BOOL:
        return mk_and(mk_implies(cond, then), mk_implies(mk_not(cond), els))
    return Term("ite", (cond, then, els), then.sort)


# ---------------------------------------------------------------------------
# Arithmetic
# ---------------------------------------------------------------------------


def _numeric_sort(args: Sequence[Term], opname: str) -> Sort:
    sort = args[0].sort
    _require(sort in (INT, REAL), f"{opname}: expected numeric sort, got {sort}")
    for a in args:
        _require(a.sort == sort, f"{opname}: mixed numeric sorts")
    return sort


def mk_add(*args: Term) -> Term:
    flat = _flatten("add", args)
    sort = _numeric_sort(flat, "add")
    const = Fraction(0)
    rest = []
    for a in flat:
        if a.is_literal_const:
            const += a.value
        else:
            rest.append(a)
    if not rest:
        return mk_int(const) if sort == INT else mk_real(const)
    if const != 0:
        rest.append(mk_int(const) if sort == INT else mk_real(const))
    if len(rest) == 1:
        return rest[0]
    return Term("add", tuple(rest), sort)


def mk_neg(a: Term) -> Term:
    sort = _numeric_sort([a], "neg")
    if a.is_literal_const:
        return mk_int(-a.value) if sort == INT else mk_real(-a.value)
    return Term("neg", (a,), sort)


def mk_sub(a: Term, b: Term) -> Term:
    sort = _numeric_sort([a, b], "sub")
    if a.is_literal_const and b.is_literal_const:
        v = a.value - b.value
        return mk_int(v) if sort == INT else mk_real(v)
    return Term("sub", (a, b), sort)


def mk_mul(a: Term, b: Term) -> Term:
    sort = _numeric_sort([a, b], "mul")
    if a.is_literal_const and b.is_literal_const:
        v = a.value * b.value
        return mk_int(v) if sort == INT else mk_real(v)
    return Term("mul", (a, b), sort)


def mk_div(a: Term, b: Term) -> Term:
    """Division by a nonzero literal constant only (keeps arithmetic linear)."""
    sort = _numeric_sort([a, b], "div")
    _require(b.is_literal_const and b.value != 0, "div: divisor must be a nonzero literal")
    if a.is_literal_const:
        v = Fraction(a.value) / b.value
        return mk_int(v) if sort == INT else mk_real(v)
    return Term("div", (a, b), sort)


def _cmp(op: str, a: Term, b: Term) -> Term:
    _numeric_sort([a, b], op)
    if a.is_literal_const and b.is_literal_const:
        table = {
            "le": a.value <= b.value,
            "lt": a.value < b.value,
        }
        return mk_bool(table[op])
    if a is b:
        return TRUE if op == "le" else FALSE
    return Term(op, (a, b), BOOL)


def mk_le(a: Term, b: Term) -> Term:
    return _cmp("le", a, b)


def mk_lt(a: Term, b: Term) -> Term:
    return _cmp("lt", a, b)


def mk_ge(a: Term, b: Term) -> Term:
    return _cmp("le", b, a)


def mk_gt(a: Term, b: Term) -> Term:
    return _cmp("lt", b, a)


# ---------------------------------------------------------------------------
# Sets
# ---------------------------------------------------------------------------


def mk_empty_set(elem_sort: Sort) -> Term:
    return Term("emptyset", (), SetSort(elem_sort))


def mk_singleton(elem: Term) -> Term:
    return Term("singleton", (elem,), SetSort(elem.sort))


def _set_binop(op: str, a: Term, b: Term) -> Term:
    _require(isinstance(a.sort, SetSort), f"{op}: expected set, got {a.sort}")
    _require(a.sort == b.sort, f"{op}: set sort mismatch {a.sort} vs {b.sort}")
    if op in ("union", "inter") and a is b:
        return a
    if op == "union":
        if a.op == "emptyset":
            return b
        if b.op == "emptyset":
            return a
    if op == "inter" and (a.op == "emptyset" or b.op == "emptyset"):
        return mk_empty_set(a.sort.elem)
    if op == "setdiff" and b.op == "emptyset":
        return a
    return Term(op, (a, b), a.sort)


def mk_union(a: Term, b: Term) -> Term:
    return _set_binop("union", a, b)


def mk_inter(a: Term, b: Term) -> Term:
    return _set_binop("inter", a, b)


def mk_setdiff(a: Term, b: Term) -> Term:
    return _set_binop("setdiff", a, b)


def mk_member(elem: Term, the_set: Term) -> Term:
    _require(isinstance(the_set.sort, SetSort), f"member: expected set, got {the_set.sort}")
    _require(elem.sort == the_set.sort.elem, "member: element sort mismatch")
    if the_set.op == "emptyset":
        return FALSE
    if the_set.op == "singleton":
        return mk_eq(elem, the_set.args[0])
    return Term("member", (elem, the_set), BOOL)


def mk_subset(a: Term, b: Term) -> Term:
    _require(isinstance(a.sort, SetSort) and a.sort == b.sort, "subset: expected equal set sorts")
    if a is b or a.op == "emptyset":
        return TRUE
    return Term("subset", (a, b), BOOL)


def mk_all_ge(the_set: Term, bound: Term) -> Term:
    """Every element of an integer set is >= bound (a pointwise-comparison
    predicate; decidable via the same ground reduction as set equality --
    the combinatory-array-logic gadget the paper's Boogie encoding uses for
    key-interval conditions on BSTs)."""
    _require(
        isinstance(the_set.sort, SetSort) and the_set.sort.elem == INT,
        "all_ge: expected a set of Int",
    )
    _require(bound.sort == INT, "all_ge: bound must be Int")
    if the_set.op == "emptyset":
        return TRUE
    if the_set.op == "singleton":
        return mk_le(bound, the_set.args[0])
    return Term("all_ge", (the_set, bound), BOOL)


def mk_all_le(the_set: Term, bound: Term) -> Term:
    """Every element of an integer set is <= bound."""
    _require(
        isinstance(the_set.sort, SetSort) and the_set.sort.elem == INT,
        "all_le: expected a set of Int",
    )
    _require(bound.sort == INT, "all_le: bound must be Int")
    if the_set.op == "emptyset":
        return TRUE
    if the_set.op == "singleton":
        return mk_le(the_set.args[0], bound)
    return Term("all_le", (the_set, bound), BOOL)


# ---------------------------------------------------------------------------
# Maps (heap fields) -- select / store / pointwise map_ite
# ---------------------------------------------------------------------------


def mk_select(the_map: Term, idx: Term) -> Term:
    _require(isinstance(the_map.sort, MapSort), f"select: expected map, got {the_map.sort}")
    _require(idx.sort == the_map.sort.dom, "select: index sort mismatch")
    return Term("select", (the_map, idx), the_map.sort.rng)


def mk_store(the_map: Term, idx: Term, val: Term) -> Term:
    _require(isinstance(the_map.sort, MapSort), f"store: expected map, got {the_map.sort}")
    _require(idx.sort == the_map.sort.dom, "store: index sort mismatch")
    _require(val.sort == the_map.sort.rng, "store: value sort mismatch")
    return Term("store", (the_map, idx, val), the_map.sort)


def mk_map_ite(selector: Term, then_map: Term, else_map: Term) -> Term:
    """Pointwise update: ``select(map_ite(S, A, B), i)`` is
    ``ite(i in S, select(A, i), select(B, i))``.

    This is the parameterized map update of the generalized array theory
    (de Moura & Bjorner 2009) that the paper uses to model heap change across
    function calls without quantifiers (Appendix A.3).
    """
    _require(isinstance(then_map.sort, MapSort), "map_ite: expected maps")
    _require(then_map.sort == else_map.sort, "map_ite: map sort mismatch")
    _require(
        isinstance(selector.sort, SetSort) and selector.sort.elem == then_map.sort.dom,
        "map_ite: selector must be a set over the map domain",
    )
    return Term("map_ite", (selector, then_map, else_map), then_map.sort)


# ---------------------------------------------------------------------------
# Quantifiers (RQ3 "unpredictable" mode only)
# ---------------------------------------------------------------------------


def mk_forall(binders: Sequence[Term], body: Term) -> Term:
    _require(body.sort == BOOL, "forall: body must be Bool")
    for v in binders:
        _require(v.op == "var", "forall: binders must be vars")
    return Term("forall", (body,), BOOL, binders=tuple(binders))


# ---------------------------------------------------------------------------
# Traversal helpers
# ---------------------------------------------------------------------------


def iter_subterms(term: Term) -> Iterator[Term]:
    """Yield every distinct subterm (DAG nodes, each once), bottom-up."""
    seen = set()
    stack = [(term, False)]
    while stack:
        node, expanded = stack.pop()
        if node in seen:
            continue
        if expanded:
            seen.add(node)
            yield node
        else:
            stack.append((node, True))
            for a in node.args:
                if a not in seen:
                    stack.append((a, False))


def collect(term: Term, predicate) -> list:
    return [t for t in iter_subterms(term) if predicate(t)]


def substitute(term: Term, mapping: dict) -> Term:
    """Simultaneous substitution of subterms (used for LC instantiation and
    quantifier instantiation).  ``mapping`` maps terms to replacement terms."""
    cache: dict = {}

    def walk(t: Term) -> Term:
        hit = mapping.get(t)
        if hit is not None:
            return hit
        got = cache.get(t)
        if got is not None:
            return got
        if not t.args:
            cache[t] = t
            return t
        new_args = tuple(walk(a) for a in t.args)
        if new_args == t.args:
            out = t
        else:
            out = _rebuild(t, new_args)
        cache[t] = out
        return out

    return walk(term)


def _rebuild(t: Term, new_args: tuple) -> Term:
    op = t.op
    if op == "and":
        return mk_and(*new_args)
    if op == "or":
        return mk_or(*new_args)
    if op == "not":
        return mk_not(new_args[0])
    if op == "implies":
        return mk_implies(*new_args)
    if op == "eq":
        return mk_eq(*new_args)
    if op == "ite":
        return mk_ite(*new_args)
    if op == "add":
        return mk_add(*new_args)
    if op == "sub":
        return mk_sub(*new_args)
    if op == "neg":
        return mk_neg(new_args[0])
    if op == "mul":
        return mk_mul(*new_args)
    if op == "div":
        return mk_div(*new_args)
    if op == "le":
        return mk_le(*new_args)
    if op == "lt":
        return mk_lt(*new_args)
    if op == "union":
        return mk_union(*new_args)
    if op == "inter":
        return mk_inter(*new_args)
    if op == "setdiff":
        return mk_setdiff(*new_args)
    if op == "singleton":
        return mk_singleton(new_args[0])
    if op == "member":
        return mk_member(*new_args)
    if op == "subset":
        return mk_subset(*new_args)
    if op == "all_ge":
        return mk_all_ge(*new_args)
    if op == "all_le":
        return mk_all_le(*new_args)
    if op == "select":
        return mk_select(*new_args)
    if op == "store":
        return mk_store(*new_args)
    if op == "map_ite":
        return mk_map_ite(*new_args)
    if op == "apply":
        return mk_apply(t.name, new_args, t.sort)
    if op == "forall":
        return mk_forall(t.binders, new_args[0])
    return Term(op, new_args, t.sort, name=t.name, value=t.value, binders=t.binders)
