"""Sort (type) system for the SMT term language.

The verification conditions produced by the FWYB methodology live in a
quantifier-free combination of theories over a small set of sorts:

- ``BOOL``, ``INT``, ``REAL`` -- the usual interpreted sorts.
- ``LOC`` -- the foreground sort of heap locations (the class sort ``C`` in
  the paper, extended with the distinguished ``nil`` constant).
- ``SetSort(elem)`` -- finite sets over an element sort (used for broken
  sets, heaplets, and key sets).
- ``MapSort(dom, rng)`` -- the map/array sort used to model pointer and data
  fields (``M_f : Loc -> V`` per Section 3.7 of the paper).
- ``UninterpretedSort(name)`` -- additional background sorts.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Sort:
    """Base class for sorts.  Instances are immutable and hashable."""

    name: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name

    @property
    def is_numeric(self) -> bool:
        return self.name in ("Int", "Real")


@dataclass(frozen=True)
class SetSort(Sort):
    """Finite sets over ``elem``.  ``name`` is derived for hashing/printing."""

    elem: Sort = None  # type: ignore[assignment]

    def __init__(self, elem: Sort):
        object.__setattr__(self, "elem", elem)
        object.__setattr__(self, "name", f"(Set {elem.name})")


@dataclass(frozen=True)
class MapSort(Sort):
    """Total maps from ``dom`` to ``rng`` (SMT arrays)."""

    dom: Sort = None  # type: ignore[assignment]
    rng: Sort = None  # type: ignore[assignment]

    def __init__(self, dom: Sort, rng: Sort):
        object.__setattr__(self, "dom", dom)
        object.__setattr__(self, "rng", rng)
        object.__setattr__(self, "name", f"(Array {dom.name} {rng.name})")


@dataclass(frozen=True)
class UninterpretedSort(Sort):
    pass


BOOL = Sort("Bool")
INT = Sort("Int")
REAL = Sort("Real")
# The foreground sort of heap locations; `nil` is a distinguished constant of
# this sort (the paper's C? = C + {nil}).
LOC = UninterpretedSort("Loc")

SET_LOC = SetSort(LOC)
SET_INT = SetSort(INT)


def is_set_sort(sort: Sort) -> bool:
    return isinstance(sort, SetSort)


def is_map_sort(sort: Sort) -> bool:
    return isinstance(sort, MapSort)
