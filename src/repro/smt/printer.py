"""SMT-LIB2 printing and the paper's quantifier-freeness cross-check.

Section 5.1: *"we cross-check that the generated SMT query is
quantifier-free and decidable by checking the absence of statements that
introduce quantified reasoning, including exists, forall, and lambda."*
``assert_quantifier_free`` is exactly that check, applied to every VC the
decidable pipeline emits (the benchmark ``bench_qf_crosscheck`` runs it over
the full suite).
"""

from __future__ import annotations

from typing import Iterable, List, Set

from .sorts import MapSort, SetSort, Sort
from .terms import Term, iter_subterms

__all__ = [
    "to_smtlib",
    "script",
    "incremental_script",
    "assert_quantifier_free",
    "QuantifierFound",
]


class QuantifierFound(Exception):
    pass


_OP_NAMES = {
    "and": "and",
    "or": "or",
    "not": "not",
    "implies": "=>",
    "eq": "=",
    "ite": "ite",
    "add": "+",
    "sub": "-",
    "neg": "-",
    "mul": "*",
    "div": "/",
    "le": "<=",
    "lt": "<",
    "union": "union",
    "inter": "intersection",
    "setdiff": "setminus",
    "singleton": "singleton",
    "member": "member",
    "subset": "subset",
    "select": "select",
    "store": "store",
    "map_ite": "map-ite",
}


def to_smtlib(term: Term) -> str:
    if term.op == "boolconst":
        return "true" if term.value else "false"
    if term.op in ("intconst", "realconst"):
        v = term.value
        if v < 0:
            return f"(- {-v})"
        return str(v)
    if term.op in ("const", "var"):
        return _mangle(term.name)
    if term.op == "emptyset":
        return f"(as emptyset {term.sort.name})"
    if term.op == "apply":
        return "(" + _mangle(term.name) + " " + " ".join(to_smtlib(a) for a in term.args) + ")"
    if term.op == "forall":
        bound = " ".join(f"({_mangle(v.name)} {v.sort.name})" for v in term.binders)
        return f"(forall ({bound}) {to_smtlib(term.args[0])})"
    name = _OP_NAMES.get(term.op, term.op)
    return "(" + name + " " + " ".join(to_smtlib(a) for a in term.args) + ")"


def _mangle(name: str) -> str:
    return "|" + name + "|" if any(c in name for c in " !$#()") else name


def script(assertions: Iterable[Term]) -> str:
    """A full SMT-LIB2 script (declarations + assertions + check-sat)."""
    assertions = list(assertions)
    decls: List[str] = []
    sorts: Set[str] = set()
    seen: Set[tuple] = set()
    for formula in assertions:
        _collect_decls(formula, sorts, seen, decls)
    lines = ["(set-logic ALL)"] + decls
    for formula in assertions:
        lines.append(f"(assert {to_smtlib(formula)})")
    lines.append("(check-sat)")
    return "\n".join(lines)


def incremental_script(prefix: Iterable[Term], payloads: Iterable[Term]) -> str:
    """An SMT-LIB2 script that asserts ``prefix`` once and checks each
    payload inside its own ``(push 1)`` / ``(pop 1)`` scope.

    This is the external-solver face of the engine's shared-prefix
    batching: the solver keeps the prefix's clauses and theory state
    across all N ``(check-sat)``s instead of re-parsing N full scripts.
    Declarations are hoisted for every term up front (external solvers
    require declare-before-use, and re-declaring inside a scope would be
    an error after ``(pop)``).
    """
    prefix = list(prefix)
    payloads = list(payloads)
    decls: List[str] = []
    sorts: Set[str] = set()
    seen: Set[tuple] = set()
    for formula in prefix + payloads:
        _collect_decls(formula, sorts, seen, decls)
    lines = ["(set-logic ALL)"] + decls
    for formula in prefix:
        lines.append(f"(assert {to_smtlib(formula)})")
    for payload in payloads:
        lines.append("(push 1)")
        lines.append(f"(assert {to_smtlib(payload)})")
        lines.append("(check-sat)")
        lines.append("(pop 1)")
    return "\n".join(lines)


def _collect_decls(
    formula: Term, sorts: Set[str], seen: Set[tuple], decls: List[str]
) -> None:
    for t in iter_subterms(formula):
        _declare_sort(t.sort, sorts, decls)
        if t.op == "const":
            key = ("const", t.name)
            if key not in seen:
                seen.add(key)
                decls.append(f"(declare-const {_mangle(t.name)} {t.sort.name})")
        elif t.op == "apply":
            key = ("fun", t.name, tuple(a.sort.name for a in t.args))
            if key not in seen:
                seen.add(key)
                dom = " ".join(a.sort.name for a in t.args)
                decls.append(f"(declare-fun {_mangle(t.name)} ({dom}) {t.sort.name})")


def _declare_sort(sort: Sort, sorts: Set[str], decls: List[str]) -> None:
    if isinstance(sort, (SetSort,)):
        _declare_sort(sort.elem, sorts, decls)
        return
    if isinstance(sort, MapSort):
        _declare_sort(sort.dom, sorts, decls)
        _declare_sort(sort.rng, sorts, decls)
        return
    if sort.name in ("Bool", "Int", "Real") or sort.name in sorts:
        return
    sorts.add(sort.name)
    decls.append(f"(declare-sort {sort.name} 0)")


def assert_quantifier_free(term: Term) -> None:
    """Raise :class:`QuantifierFound` if the term contains any binder.

    This is the decidability cross-check from Section 5.1 of the paper.
    """
    for t in iter_subterms(term):
        if t.op in ("forall", "exists", "lambda", "var"):
            raise QuantifierFound(f"quantified construct '{t.op}' in VC")
