"""Eager rewriting that eliminates the map (array) theory from ground VCs.

The verification conditions produced by ``repro.core.vcgen`` are *ground*:
every ``select``, ``store`` and ``map_ite`` has concrete (program-derived)
index terms.  For ground formulas, the read-over-write axioms can be applied
exhaustively as rewrite rules:

    select(store(A, i, v), j)     -->  ite(i = j, v, select(A, j))
    select(map_ite(S, A, B), j)   -->  ite(j in S, select(A, j), select(B, j))
    select(ite(c, A, B), j)       -->  ite(c, select(A, j), select(B, j))

After this pass the only remaining map terms are *base* maps under ``select``
with ground indices, which the congruence closure treats as uninterpreted
function applications.  This is how "decidable verification" is realized:
the generalized array theory reduces to EUF on the paper's VCs.

Membership over composite set terms is also distributed eagerly:

    e in (A union B)   -->  e in A  or  e in B
    e in (A inter B)   -->  e in A and e in B
    e in (A diff B)    -->  e in A and not (e in B)
    e in ite(c, A, B)  -->  ite(c, e in A, e in B)

(``e in {t}`` and ``e in empty`` simplify at construction time already.)
This leaves ``member`` applied only to base set terms; equalities and subset
atoms between composite sets are handled by ``setreduce``.
"""

from __future__ import annotations

from .terms import (
    Term,
    mk_and,
    mk_ite,
    mk_member,
    mk_not,
    mk_or,
    mk_select,
    _rebuild,
)

__all__ = ["rewrite"]


def rewrite(term: Term) -> Term:
    """Bottom-up exhaustive application of the elimination rules."""
    cache: dict = {}

    def walk(t: Term) -> Term:
        got = cache.get(t)
        if got is not None:
            return got
        if t.args:
            new_args = tuple(walk(a) for a in t.args)
            if new_args != t.args:
                t2 = _rebuild(t, new_args)
                # Rebuilding may constant-fold; restart on the new node.
                out = walk(t2) if t2 is not t else _apply_rules(t2, walk)
            else:
                out = _apply_rules(t, walk)
        else:
            out = t
        cache[t] = out
        return out

    return walk(term)


def _apply_rules(t: Term, walk) -> Term:
    if t.op == "select":
        the_map, idx = t.args
        if the_map.op == "store":
            base, i, v = the_map.args
            from .terms import mk_eq

            return walk(mk_ite(mk_eq(i, idx), v, mk_select(base, idx)))
        if the_map.op == "map_ite":
            sel, a, b = the_map.args
            return walk(mk_ite(mk_member(idx, sel), mk_select(a, idx), mk_select(b, idx)))
        if the_map.op == "ite":
            c, a, b = the_map.args
            return walk(mk_ite(c, mk_select(a, idx), mk_select(b, idx)))
        return t
    if t.op == "member":
        elem, the_set = t.args
        if the_set.op == "union":
            a, b = the_set.args
            return walk(mk_or(mk_member(elem, a), mk_member(elem, b)))
        if the_set.op == "inter":
            a, b = the_set.args
            return walk(mk_and(mk_member(elem, a), mk_member(elem, b)))
        if the_set.op == "setdiff":
            a, b = the_set.args
            return walk(mk_and(mk_member(elem, a), mk_not(mk_member(elem, b))))
        if the_set.op == "ite":
            c, a, b = the_set.args
            return walk(mk_ite(c, mk_member(elem, a), mk_member(elem, b)))
        return t
    return t
