"""Treaps: BST ordering on keys + max-heap ordering on priorities.

The intrinsic definition extends the BST definition with a ``prio`` map and
the local heap condition (children's priorities do not exceed the
parent's).  Insertion attaches a new leaf and rotates it up while its
priority beats its parent's -- the rotations are the Appendix D.2
right/left-rotates, realized here as FWYB repairs: a rotation breaks
exactly the two pivot nodes, whose monadic maps (rank, min/max, keys, hs)
are then repaired locally.
"""

from __future__ import annotations

from ..core.ids import IntrinsicDefinition
from ..lang import exprs as E
from ..lang.ast import (
    Program,
    SAssertLCAndRemove,
    SAssign,
    SCall,
    SIf,
    SInferLCOutsideBr,
    SMut,
    SNewObj,
)
from ..lang.exprs import (
    B,
    F,
    I,
    NIL_E,
    V,
    add,
    and_,
    diff,
    empty_int_set,
    empty_loc_set,
    eq,
    ge,
    gt,
    iff,
    implies,
    ite,
    le,
    lt,
    member,
    ne,
    not_,
    old,
    singleton,
    sub,
    subset,
    union,
)
from ..smt.sorts import BOOL, INT, LOC
from .bst import BST_IMPACT, bst_lc, bst_signature
from .common import EMPTY_BR, X, isnil, mkproc, nonnil

__all__ = ["treap_ids", "treap_program", "METHODS"]


def treap_signature():
    sig = bst_signature(extra_ghosts={"prio": INT})
    sig.name = "Treap"
    return sig


def treap_lc() -> E.Expr:
    heap_cond = and_(
        implies(
            nonnil(F(X, "l")),
            le(F(X, "l", "prio"), F(X, "prio")),
        ),
        implies(
            nonnil(F(X, "r")),
            le(F(X, "r", "prio"), F(X, "prio")),
        ),
    )
    return and_(bst_lc(), heap_cond)


def treap_ids() -> IntrinsicDefinition:
    impact = dict(BST_IMPACT)
    impact["prio"] = [X, F(X, "p")]
    return IntrinsicDefinition(
        name="Treap",
        sig=treap_signature(),
        lc_parts={"Br": treap_lc()},
        correlation=isnil(F(X, "p")),
        impact=impact,
        steering_ghosts=frozenset({"p", "prio"}),
    )


_ids = treap_ids()
LC = lambda obj: _ids.lc_at(obj)  # noqa: E731

x, y, z, k, pr, r, m, tmp, rest, b = (
    V("x"),
    V("y"),
    V("z"),
    V("k"),
    V("pr"),
    V("r"),
    V("m"),
    V("tmp"),
    V("rest"),
    V("b"),
)


def _refresh_measures(node):
    l, r_ = F(node, "l"), F(node, "r")
    return [
        SMut(node, "min", ite(nonnil(l), F(node, "l", "min"), F(node, "key"))),
        SMut(node, "max", ite(nonnil(r_), F(node, "r", "max"), F(node, "key"))),
        SMut(
            node,
            "keys",
            union(
                singleton(F(node, "key")),
                ite(nonnil(l), F(node, "l", "keys"), empty_int_set()),
                ite(nonnil(r_), F(node, "r", "keys"), empty_int_set()),
            ),
        ),
        SMut(
            node,
            "hs",
            union(
                singleton(node),
                ite(nonnil(l), F(node, "l", "hs"), empty_loc_set()),
                ite(nonnil(r_), F(node, "r", "hs"), empty_loc_set()),
            ),
        ),
    ]


def _fix_singleton(node):
    return [
        SMut(node, "p", NIL_E),
        SMut(node, "min", F(node, "key")),
        SMut(node, "max", F(node, "key")),
        SMut(node, "keys", singleton(F(node, "key"))),
        SMut(node, "hs", singleton(node)),
    ]


BR_SUBSET_OLD_PARENT = subset(
    E.BR,
    ite(isnil(old(F(x, "p"))), empty_loc_set(), singleton(old(F(x, "p")))),
)


def proc_treap_find():
    return mkproc(
        "treap_find",
        params=[("x", LOC), ("k", INT)],
        outs=[("b", BOOL)],
        requires=[EMPTY_BR, nonnil(x), LC(x)],
        ensures=[EMPTY_BR, iff(b, member(k, old(F(x, "keys"))))],
        modifies=empty_loc_set(),
        body=[
            SInferLCOutsideBr(x),
            SIf(
                eq(F(x, "key"), k),
                [SAssign("b", B(True))],
                [
                    SIf(
                        lt(k, F(x, "key")),
                        [
                            SIf(
                                isnil(F(x, "l")),
                                [SAssign("b", B(False))],
                                [
                                    SInferLCOutsideBr(F(x, "l")),
                                    SCall(("b",), "treap_find", (F(x, "l"), k)),
                                ],
                            ),
                        ],
                        [
                            SIf(
                                isnil(F(x, "r")),
                                [SAssign("b", B(False))],
                                [
                                    SInferLCOutsideBr(F(x, "r")),
                                    SCall(("b",), "treap_find", (F(x, "r"), k)),
                                ],
                            ),
                        ],
                    ),
                ],
            ),
        ],
    )


def proc_treap_insert():
    """Insert k with priority pr; rotations restore the heap order.

    Unlike plain BST insert, the subtree root can *change* (the new node
    rotates to the top when its priority dominates), so the method returns
    the new subtree root, detached from the old parent (which is the
    caller's single broken object to repair -- the Fig. 7 pattern)."""
    fresh = diff(E.ALLOC, old(E.ALLOC))
    return mkproc(
        "treap_insert",
        params=[("x", LOC), ("k", INT), ("pr", INT)],
        outs=[("r", LOC)],
        requires=[EMPTY_BR, nonnil(x), LC(x)],
        ensures=[
            BR_SUBSET_OLD_PARENT,
            nonnil(r),
            LC(r),
            isnil(F(r, "p")),
            eq(F(r, "keys"), union(old(F(x, "keys")), singleton(k))),
            subset(old(F(x, "hs")), F(r, "hs")),
            subset(F(r, "hs"), union(old(F(x, "hs")), fresh)),
            implies(
                isnil(old(F(x, "p"))),
                le(F(r, "rank"), add(old(F(x, "rank")), E.R(1))),
            ),
            implies(
                nonnil(old(F(x, "p"))),
                lt(F(r, "rank"), old(F(x, "p", "rank"))),
            ),
            ge(F(r, "min"), ite(lt(k, old(F(x, "min"))), k, old(F(x, "min")))),
            le(F(r, "max"), ite(gt(k, old(F(x, "max"))), k, old(F(x, "max")))),
            le(F(r, "prio"), ite(gt(pr, old(F(x, "prio"))), pr, old(F(x, "prio")))),
            ge(F(r, "prio"), old(F(x, "prio"))),
            ge(F(r, "prio"), ite(member(k, old(F(x, "keys"))), old(F(x, "prio")), pr)),
            implies(nonnil(F(r, "l")), le(F(r, "l", "prio"), old(F(x, "prio")))),
            implies(nonnil(F(r, "r")), le(F(r, "r", "prio"), old(F(x, "prio")))),
        ],
        modifies=F(x, "hs"),
        locals={"z": LOC, "tmp": LOC, "y": LOC, "xp": LOC, "w": LOC},
        body=[
            SInferLCOutsideBr(x),
            SInferLCOutsideBr(F(x, "p")),
            SAssign("xp", F(x, "p")),
            SIf(
                eq(k, F(x, "key")),
                [
                    SMut(x, "p", NIL_E),
                    SAssertLCAndRemove(x),
                    SAssign("r", x),
                ],
                [
                    SIf(
                        lt(k, F(x, "key")),
                        [
                            SAssign("y", F(x, "l")),
                            SIf(
                                isnil(F(x, "l")),
                                [
                                    SNewObj("z"),
                                    SMut(z, "key", k),
                                    SMut(z, "prio", pr),
                                    SMut(z, "rank", sub(F(x, "rank"), E.R(1))),
                                    SMut(z, "min", k),
                                    SMut(z, "max", k),
                                    SMut(z, "keys", singleton(k)),
                                    SMut(z, "hs", singleton(z)),
                                    SAssign("tmp", z),
                                ],
                                [
                                    SInferLCOutsideBr(y),
                                    SCall(("tmp",), "treap_insert", (y, k, pr)),
                                    SInferLCOutsideBr(y),
                                ],
                            ),
                            # attach tmp as left child, then maybe rotate right
                            SIf(
                                le(F(tmp, "prio"), F(x, "prio")),
                                [
                                    SMut(x, "l", tmp),
                                    SAssertLCAndRemove(y),
                                    SMut(tmp, "p", x),
                                    SAssertLCAndRemove(tmp),
                                    *_refresh_measures(x),
                                    SMut(x, "p", NIL_E),
                                    SAssertLCAndRemove(x),
                                    SAssign("r", x),
                                ],
                                [
                                    # right rotation: tmp becomes the root,
                                    # x adopts tmp's right subtree as left
                                    SAssign("w", F(tmp, "r")),
                                    SMut(x, "l", V("w")),
                                    SAssertLCAndRemove(y),
                                    SMut(tmp, "r", x),
                                    SMut(tmp, "p", NIL_E),
                                    SIf(
                                        nonnil(V("w")),
                                        [SMut(V("w"), "p", x)],
                                        [],
                                    ),
                                    SAssertLCAndRemove(V("w")),
                                    *_refresh_measures(x),
                                    SMut(x, "p", tmp),
                                    SMut(
                                        tmp,
                                        "rank",
                                        ite(
                                            isnil(V("xp")),
                                            add(F(x, "rank"), E.R(1)),
                                            E.div(
                                                add(F(V("xp"), "rank"), F(x, "rank")),
                                                E.R(2),
                                            ),
                                        ),
                                    ),
                                    SAssertLCAndRemove(x),
                                    *_refresh_measures(tmp),
                                    SAssertLCAndRemove(tmp),
                                    SAssign("r", tmp),
                                ],
                            ),
                        ],
                        [
                            SAssign("y", F(x, "r")),
                            SIf(
                                isnil(F(x, "r")),
                                [
                                    SNewObj("z"),
                                    SMut(z, "key", k),
                                    SMut(z, "prio", pr),
                                    SMut(z, "rank", sub(F(x, "rank"), E.R(1))),
                                    SMut(z, "min", k),
                                    SMut(z, "max", k),
                                    SMut(z, "keys", singleton(k)),
                                    SMut(z, "hs", singleton(z)),
                                    SAssign("tmp", z),
                                ],
                                [
                                    SInferLCOutsideBr(y),
                                    SCall(("tmp",), "treap_insert", (y, k, pr)),
                                    SInferLCOutsideBr(y),
                                ],
                            ),
                            SIf(
                                le(F(tmp, "prio"), F(x, "prio")),
                                [
                                    SMut(x, "r", tmp),
                                    SAssertLCAndRemove(y),
                                    SMut(tmp, "p", x),
                                    SAssertLCAndRemove(tmp),
                                    *_refresh_measures(x),
                                    SMut(x, "p", NIL_E),
                                    SAssertLCAndRemove(x),
                                    SAssign("r", x),
                                ],
                                [
                                    # left rotation: tmp becomes the root
                                    SAssign("w", F(tmp, "l")),
                                    SMut(x, "r", V("w")),
                                    SAssertLCAndRemove(y),
                                    SMut(tmp, "l", x),
                                    SMut(tmp, "p", NIL_E),
                                    SIf(
                                        nonnil(V("w")),
                                        [SMut(V("w"), "p", x)],
                                        [],
                                    ),
                                    SAssertLCAndRemove(V("w")),
                                    *_refresh_measures(x),
                                    SMut(x, "p", tmp),
                                    SMut(
                                        tmp,
                                        "rank",
                                        ite(
                                            isnil(V("xp")),
                                            add(F(x, "rank"), E.R(1)),
                                            E.div(
                                                add(F(V("xp"), "rank"), F(x, "rank")),
                                                E.R(2),
                                            ),
                                        ),
                                    ),
                                    SAssertLCAndRemove(x),
                                    *_refresh_measures(tmp),
                                    SAssertLCAndRemove(tmp),
                                    SAssign("r", tmp),
                                ],
                            ),
                        ],
                    ),
                ],
            ),
        ],
    )


def proc_treap_extract_min():
    """Same splice as the BST extract-min; the heap order is preserved by
    removal (priorities only leave)."""
    return mkproc(
        "treap_extract_min",
        params=[("x", LOC)],
        outs=[("m", LOC), ("rest", LOC)],
        requires=[EMPTY_BR, nonnil(x), LC(x)],
        ensures=[
            BR_SUBSET_OLD_PARENT,
            nonnil(m),
            LC(m),
            isnil(F(m, "p")),
            isnil(F(m, "l")),
            isnil(F(m, "r")),
            eq(F(m, "key"), old(F(x, "min"))),
            member(m, old(F(x, "hs"))),
            implies(
                nonnil(rest),
                and_(
                    LC(rest),
                    isnil(F(rest, "p")),
                    eq(F(rest, "keys"), diff(old(F(x, "keys")), singleton(old(F(x, "min"))))),
                    subset(F(rest, "hs"), old(F(x, "hs"))),
                    not_(member(m, F(rest, "hs"))),
                    le(F(rest, "rank"), old(F(x, "rank"))),
                    le(F(rest, "max"), old(F(x, "max"))),
                    le(F(rest, "prio"), old(F(x, "prio"))),
                    E.all_ge(F(rest, "keys"), add(old(F(x, "min")), I(1))),
                ),
            ),
            implies(isnil(rest), eq(old(F(x, "keys")), singleton(old(F(x, "min"))))),
        ],
        modifies=F(x, "hs"),
        locals={"z": LOC, "tmp": LOC},
        body=[
            SInferLCOutsideBr(x),
            SIf(
                isnil(F(x, "l")),
                [
                    SAssign("m", x),
                    SAssign("rest", F(x, "r")),
                    SInferLCOutsideBr(rest),
                    SMut(x, "r", NIL_E),
                    SIf(
                        nonnil(rest),
                        [SMut(rest, "p", NIL_E), SAssertLCAndRemove(rest)],
                        [],
                    ),
                    *_fix_singleton(x),
                    SAssertLCAndRemove(x),
                ],
                [
                    SAssign("z", F(x, "l")),
                    SInferLCOutsideBr(z),
                    SCall(("m", "tmp"), "treap_extract_min", (z,)),
                    SIf(
                        nonnil(tmp),
                        [
                            SMut(x, "l", tmp),
                            SAssertLCAndRemove(z),
                            SMut(tmp, "p", x),
                            SAssertLCAndRemove(tmp),
                        ],
                        [
                            SMut(x, "l", NIL_E),
                            SAssertLCAndRemove(z),
                        ],
                    ),
                    *_refresh_measures(x),
                    SMut(x, "p", NIL_E),
                    SAssertLCAndRemove(x),
                    SAssign("rest", x),
                ],
            ),
        ],
    )


def proc_treap_remove_root():
    """Remove node x from its subtree: the higher-priority child is pulled
    up via the minimum-of-right-subtree splice (as for plain BSTs; removal
    cannot violate the heap order of the remaining nodes when the new root
    priority is refreshed to the old root's)."""
    return mkproc(
        "treap_remove_root",
        params=[("x", LOC)],
        outs=[("r", LOC)],
        requires=[EMPTY_BR, nonnil(x), LC(x)],
        ensures=[
            BR_SUBSET_OLD_PARENT,
            LC(x),
            isnil(F(x, "p")),
            isnil(F(x, "l")),
            isnil(F(x, "r")),
            implies(
                nonnil(r),
                and_(
                    LC(r),
                    ne(r, E.old(x)),
                    isnil(F(r, "p")),
                    eq(F(r, "keys"), diff(old(F(x, "keys")), singleton(old(F(x, "key"))))),
                    subset(F(r, "hs"), old(F(x, "hs"))),
                    le(F(r, "rank"), old(F(x, "rank"))),
                    ge(F(r, "min"), old(F(x, "min"))),
                    le(F(r, "max"), old(F(x, "max"))),
                    le(F(r, "prio"), old(F(x, "prio"))),
                ),
            ),
            implies(isnil(r), eq(old(F(x, "keys")), singleton(old(F(x, "key"))))),
        ],
        modifies=F(x, "hs"),
        locals={"y": LOC, "z": LOC, "m": LOC, "rest": LOC},
        body=[
            SInferLCOutsideBr(x),
            SIf(
                and_(isnil(F(x, "l")), isnil(F(x, "r"))),
                [
                    SMut(x, "p", NIL_E),
                    SAssertLCAndRemove(x),
                    SAssign("r", NIL_E),
                ],
                [
                    SIf(
                        isnil(F(x, "l")),
                        [
                            SAssign("z", F(x, "r")),
                            SInferLCOutsideBr(z),
                            SMut(x, "r", NIL_E),
                            SMut(z, "p", NIL_E),
                            SAssertLCAndRemove(z),
                            *_fix_singleton(x),
                            SAssertLCAndRemove(x),
                            SAssign("r", z),
                        ],
                        [
                            SIf(
                                isnil(F(x, "r")),
                                [
                                    SAssign("z", F(x, "l")),
                                    SInferLCOutsideBr(z),
                                    SMut(x, "l", NIL_E),
                                    SMut(z, "p", NIL_E),
                                    SAssertLCAndRemove(z),
                                    *_fix_singleton(x),
                                    SAssertLCAndRemove(x),
                                    SAssign("r", z),
                                ],
                                [
                                    SAssign("y", F(x, "l")),
                                    SAssign("z", F(x, "r")),
                                    SInferLCOutsideBr(y),
                                    SInferLCOutsideBr(z),
                                    SCall(("m", "rest"), "treap_extract_min", (z,)),
                                    SInferLCOutsideBr(y),
                                    SMut(x, "l", NIL_E),
                                    SMut(x, "r", NIL_E),
                                    SAssertLCAndRemove(z),
                                    SMut(m, "rank", F(x, "rank")),
                                    SMut(m, "prio", F(x, "prio")),
                                    SMut(m, "l", y),
                                    SMut(y, "p", m),
                                    SAssertLCAndRemove(y),
                                    SIf(
                                        nonnil(rest),
                                        [
                                            SMut(m, "r", rest),
                                            SMut(rest, "p", m),
                                            SAssertLCAndRemove(rest),
                                        ],
                                        [],
                                    ),
                                    *_refresh_measures(m),
                                    SAssertLCAndRemove(m),
                                    *_fix_singleton(x),
                                    SAssertLCAndRemove(x),
                                    SAssign("r", m),
                                ],
                            ),
                        ],
                    ),
                ],
            ),
        ],
    )


def proc_treap_delete():
    return mkproc(
        "treap_delete",
        params=[("x", LOC), ("k", INT)],
        outs=[("r", LOC)],
        requires=[EMPTY_BR, nonnil(x), LC(x)],
        ensures=[
            BR_SUBSET_OLD_PARENT,
            implies(
                nonnil(r),
                and_(
                    LC(r),
                    isnil(F(r, "p")),
                    eq(F(r, "keys"), diff(old(F(x, "keys")), singleton(k))),
                    subset(F(r, "hs"), old(F(x, "hs"))),
                    le(F(r, "rank"), old(F(x, "rank"))),
                    ge(F(r, "min"), old(F(x, "min"))),
                    le(F(r, "max"), old(F(x, "max"))),
                    le(F(r, "prio"), old(F(x, "prio"))),
                ),
            ),
            implies(isnil(r), subset(old(F(x, "keys")), singleton(k))),
        ],
        modifies=F(x, "hs"),
        locals={"z": LOC, "tmp": LOC},
        body=[
            SInferLCOutsideBr(x),
            SIf(
                eq(k, F(x, "key")),
                [SCall(("r",), "treap_remove_root", (x,))],
                [
                    SIf(
                        lt(k, F(x, "key")),
                        [
                            SIf(
                                isnil(F(x, "l")),
                                [
                                    SMut(x, "p", NIL_E),
                                    SAssertLCAndRemove(x),
                                    SAssign("r", x),
                                ],
                                [
                                    SAssign("z", F(x, "l")),
                                    SInferLCOutsideBr(z),
                                    SCall(("tmp",), "treap_delete", (z, k)),
                                    SInferLCOutsideBr(z),
                                    SIf(
                                        nonnil(tmp),
                                        [
                                            SMut(x, "l", tmp),
                                            SAssertLCAndRemove(z),
                                            SMut(tmp, "p", x),
                                            SAssertLCAndRemove(tmp),
                                        ],
                                        [
                                            SMut(x, "l", NIL_E),
                                            SAssertLCAndRemove(z),
                                        ],
                                    ),
                                    *_refresh_measures(x),
                                    SMut(x, "p", NIL_E),
                                    SAssertLCAndRemove(x),
                                    SAssign("r", x),
                                ],
                            ),
                        ],
                        [
                            SIf(
                                isnil(F(x, "r")),
                                [
                                    SMut(x, "p", NIL_E),
                                    SAssertLCAndRemove(x),
                                    SAssign("r", x),
                                ],
                                [
                                    SAssign("z", F(x, "r")),
                                    SInferLCOutsideBr(z),
                                    SCall(("tmp",), "treap_delete", (z, k)),
                                    SInferLCOutsideBr(z),
                                    SIf(
                                        nonnil(tmp),
                                        [
                                            SMut(x, "r", tmp),
                                            SAssertLCAndRemove(z),
                                            SMut(tmp, "p", x),
                                            SAssertLCAndRemove(tmp),
                                        ],
                                        [
                                            SMut(x, "r", NIL_E),
                                            SAssertLCAndRemove(z),
                                        ],
                                    ),
                                    *_refresh_measures(x),
                                    SMut(x, "p", NIL_E),
                                    SAssertLCAndRemove(x),
                                    SAssign("r", x),
                                ],
                            ),
                        ],
                    ),
                ],
            ),
        ],
    )


def treap_program() -> Program:
    procs = [
        proc_treap_find(),
        proc_treap_insert(),
        proc_treap_extract_min(),
        proc_treap_remove_root(),
        proc_treap_delete(),
    ]
    return Program(treap_signature(), {p.name: p for p in procs})


METHODS = ["treap_find", "treap_insert", "treap_delete", "treap_remove_root"]


def build_treap(sig, items):
    """items: list of (key, prio).  Builds a valid treap heap."""
    from fractions import Fraction

    from ..lang.semantics import Heap

    heap = Heap(sig)

    def insert_concrete(root, key, prio):
        node = heap.new_object()
        heap.write(node, "key", key)
        heap.write(node, "prio", prio)
        # plain BST insert then bubble up by rotations, concretely
        if root is None:
            return node
        # (re)build recursively: simple approach: collect and rebuild
        return root

    # Build by sorting on priority descending, inserting as BST: gives a
    # valid treap without rotations.
    items = sorted(set(items), key=lambda kp: (-kp[1], kp[0]))
    root = None
    parent_of = {}
    for key, prio in items:
        node = heap.new_object()
        heap.write(node, "key", key)
        heap.write(node, "prio", prio)
        if root is None:
            root = node
            continue
        cur = root
        while True:
            if key < heap.read(cur, "key"):
                nxt = heap.read(cur, "l")
                if nxt is None:
                    heap.write(cur, "l", node)
                    heap.write(node, "p", cur)
                    break
            else:
                nxt = heap.read(cur, "r")
                if nxt is None:
                    heap.write(cur, "r", node)
                    heap.write(node, "p", cur)
                    break
            cur = nxt

    def measure(node, depth):
        if node is None:
            return
        heap.write(node, "rank", Fraction(1000 - depth))
        l, r_ = heap.read(node, "l"), heap.read(node, "r")
        measure(l, depth + 1)
        measure(r_, depth + 1)
        ks = {heap.read(node, "key")}
        hs = {node}
        mn = mx = heap.read(node, "key")
        if l is not None:
            ks |= heap.read(l, "keys")
            hs |= heap.read(l, "hs")
            mn = heap.read(l, "min")
        if r_ is not None:
            ks |= heap.read(r_, "keys")
            hs |= heap.read(r_, "hs")
            mx = heap.read(r_, "max")
        heap.write(node, "keys", frozenset(ks))
        heap.write(node, "hs", frozenset(hs))
        heap.write(node, "min", mn)
        heap.write(node, "max", mx)

    measure(root, 0)
    return heap, root
