"""Red-black trees (Table 2: Insert, Delete, Del-L-Fixup, Del-R-Fixup,
Find-Min).

Intrinsic definition = BST definition + ``black : C -> Bool`` +
``bh : C -> Int`` (black-height) with the local conditions:

- both children carry the same black-height contribution,
- ``bh(x)`` adds one exactly when x is black,
- a red node has black children.

Insertion follows the functional rebalancing scheme: the recursion may
return a subtree whose *root* violates the red-red condition (the root is
the single broken object, carried in Br across the call boundary -- the
FWYB rendition of Okasaki's "infrared" trees); the black grandparent
repairs it with one of four rotation/recolor cases, and the top-level
insert blackens the final root.

Deletion propagates a *black-height deficiency*: ``del_l_fixup`` /
``del_r_fixup`` are the paper's standalone methods that repair a node
whose left/right subtree is one black-height short, returning the repaired
subtree and whether the deficiency escaped upward.
"""

from __future__ import annotations

from ..core.ids import IntrinsicDefinition
from ..lang import exprs as E
from ..lang.ast import (
    Program,
    SAssertLCAndRemove,
    SAssign,
    SCall,
    SIf,
    SInferLCOutsideBr,
    SMut,
    SNewObj,
)
from ..lang.exprs import (
    EBool,
    F,
    I,
    NIL_E,
    V,
    add,
    and_,
    diff,
    empty_int_set,
    empty_loc_set,
    eq,
    ge,
    gt,
    implies,
    ite,
    le,
    lt,
    member,
    ne,
    not_,
    old,
    or_,
    singleton,
    sub,
    subset,
    union,
)
from ..smt.sorts import BOOL, INT, LOC
from .bst import BST_IMPACT, bst_lc, bst_signature
from .common import EMPTY_BR, X, isnil, mkproc, nonnil

__all__ = ["rbt_ids", "rbt_program", "METHODS"]


def rbt_signature():
    sig = bst_signature(extra_ghosts={"black": BOOL, "bh": INT})
    sig.name = "RBT"
    return sig


def _bh(node) -> E.Expr:
    return ite(isnil(node), I(0), F(node, "bh"))


def _is_black(node) -> E.Expr:
    return or_(isnil(node), F(node, "black"))


def rbt_color_lc() -> E.Expr:
    bhl = _bh(F(X, "l"))
    bhr = _bh(F(X, "r"))
    return and_(
        eq(bhl, bhr),
        eq(F(X, "bh"), add(bhl, ite(F(X, "black"), I(1), I(0)))),
        ge(F(X, "bh"), I(0)),
        implies(
            not_(F(X, "black")),
            and_(_is_black(F(X, "l")), _is_black(F(X, "r"))),
        ),
    )


def rbt_lc() -> E.Expr:
    return and_(bst_lc(), rbt_color_lc())


def rbt_partial_lc_at(obj) -> E.Expr:
    """LC minus the red-children condition (the insert recursion's pending
    state: obj may be red with one red child)."""
    from ..core.ids import LC_VAR
    from ..lang.exprs import subst_expr

    bhl = _bh(F(obj, "l"))
    bhr = _bh(F(obj, "r"))
    return and_(
        subst_expr(bst_lc(), {LC_VAR: obj}),
        eq(bhl, bhr),
        eq(F(obj, "bh"), add(bhl, ite(F(obj, "black"), I(1), I(0)))),
        ge(F(obj, "bh"), I(0)),
    )


def rbt_ids() -> IntrinsicDefinition:
    impact = dict(BST_IMPACT)
    impact["black"] = [X, F(X, "p")]
    impact["bh"] = [X, F(X, "p")]
    return IntrinsicDefinition(
        name="Red-Black Tree",
        sig=rbt_signature(),
        lc_parts={"Br": rbt_lc()},
        correlation=and_(isnil(F(X, "p")), F(X, "black")),
        impact=impact,
        steering_ghosts=frozenset({"p", "black"}),
    )


_ids = rbt_ids()
LC = lambda obj: _ids.lc_at(obj)  # noqa: E731

x, y, z, w, s, k, r, m, tmp, rest, b, xp, d = (
    V("x"),
    V("y"),
    V("z"),
    V("w"),
    V("s"),
    V("k"),
    V("r"),
    V("m"),
    V("tmp"),
    V("rest"),
    V("b"),
    V("xp"),
    V("d"),
)


def _refresh_measures(node):
    l, r_ = F(node, "l"), F(node, "r")
    return [
        SMut(node, "min", ite(nonnil(l), F(node, "l", "min"), F(node, "key"))),
        SMut(node, "max", ite(nonnil(r_), F(node, "r", "max"), F(node, "key"))),
        SMut(
            node,
            "keys",
            union(
                singleton(F(node, "key")),
                ite(nonnil(l), F(node, "l", "keys"), empty_int_set()),
                ite(nonnil(r_), F(node, "r", "keys"), empty_int_set()),
            ),
        ),
        SMut(
            node,
            "hs",
            union(
                singleton(node),
                ite(nonnil(l), F(node, "l", "hs"), empty_loc_set()),
                ite(nonnil(r_), F(node, "r", "hs"), empty_loc_set()),
            ),
        ),
        SMut(
            node,
            "bh",
            add(_bh(l), ite(F(node, "black"), I(1), I(0))),
        ),
    ]


def _fix_singleton(node, black=True):
    return [
        SMut(node, "p", NIL_E),
        SMut(node, "min", F(node, "key")),
        SMut(node, "max", F(node, "key")),
        SMut(node, "keys", singleton(F(node, "key"))),
        SMut(node, "hs", singleton(node)),
        SMut(node, "black", EBool(black)),
        SMut(node, "bh", I(1 if black else 0)),
    ]


def _rotate_left_at(a, bname, rankexpr):
    """a.r becomes the local root (bname is a local var holding a.r)."""
    bv = V(bname)
    return [
        SAssign("w", F(bv, "l")),
        SMut(a, "r", V("w")),
        SMut(bv, "l", a),
        SMut(bv, "p", NIL_E),
        SIf(nonnil(V("w")), [SMut(V("w"), "p", a)], []),
        SAssertLCAndRemove(V("w")),
        *_refresh_measures(a),
        SMut(a, "p", bv),
        SMut(bv, "rank", rankexpr),
        *_refresh_measures(bv),
    ]


def _rotate_right_at(a, bname, rankexpr):
    bv = V(bname)
    return [
        SAssign("w", F(bv, "r")),
        SMut(a, "l", V("w")),
        SMut(bv, "r", a),
        SMut(bv, "p", NIL_E),
        SIf(nonnil(V("w")), [SMut(V("w"), "p", a)], []),
        SAssertLCAndRemove(V("w")),
        *_refresh_measures(a),
        SMut(a, "p", bv),
        SMut(bv, "rank", rankexpr),
        *_refresh_measures(bv),
    ]


def _new_rank(xpv, av):
    return ite(
        isnil(xpv),
        add(F(av, "rank"), E.R(1)),
        E.div(add(F(xpv, "rank"), F(av, "rank")), E.R(2)),
    )


def proc_rbt_find_min():
    return mkproc(
        "rbt_find_min",
        params=[("x", LOC)],
        outs=[("k", INT)],
        requires=[EMPTY_BR, nonnil(x), LC(x)],
        ensures=[EMPTY_BR, eq(k, old(F(x, "min"))), member(k, old(F(x, "keys")))],
        modifies=empty_loc_set(),
        body=[
            SInferLCOutsideBr(x),
            SIf(
                isnil(F(x, "l")),
                [SAssign("k", F(x, "key"))],
                [
                    SInferLCOutsideBr(F(x, "l")),
                    SCall(("k",), "rbt_find_min", (F(x, "l"),)),
                ],
            ),
        ],
    )


def _okasaki_balance_left(out_var):
    """x is black; its left child tmp has a pending red-red violation.
    Repair via the two Okasaki cases; result (red root, black children)
    is written to out_var.  Entry Br: {x, tmp}; exit: {out_var holder}."""
    return [
        SIf(
            and_(nonnil(F(tmp, "l")), not_(_is_black(F(tmp, "l")))),
            [
                # case L-L: right rotation at x; tmp is the new root
                SMut(F(tmp, "l"), "black", EBool(True)),
                SMut(F(tmp, "l"), "bh", add(F(tmp, "l", "bh"), I(1))),
                SAssertLCAndRemove(F(tmp, "l")),
                SAssign("y", tmp),
                *_rotate_right_at(x, "y", _new_rank(xp, x)),
                SAssertLCAndRemove(x),
                SAssertLCAndRemove(y),
                SAssign(out_var, y),
            ],
            [
                # case L-R: left-rotate inside tmp, then right-rotate at x
                SAssign("z", F(tmp, "r")),
                SInferLCOutsideBr(z),
                # the old red child is blackened; the grandchild z becomes
                # the (red) root of the repaired subtree
                SMut(tmp, "black", EBool(True)),
                SAssign("y", tmp),
                # left-rotate (y, z)
                SAssign("w", F(z, "l")),
                SMut(y, "r", V("w")),
                SMut(z, "l", y),
                SMut(z, "p", NIL_E),
                SIf(nonnil(V("w")), [SMut(V("w"), "p", y)], []),
                SAssertLCAndRemove(V("w")),
                *_refresh_measures(y),
                SMut(y, "p", z),
                SMut(z, "rank", E.div(add(F(x, "rank"), F(y, "rank")), E.R(2))),
                SAssertLCAndRemove(y),
                *_refresh_measures(z),
                SMut(x, "l", z),
                SMut(z, "p", x),
                # re-attach re-broke the blackened old child: repair it
                SAssertLCAndRemove(y),
                # z stays broken until the outer rotation rebalances it
                SAssign("y", F(x, "l")),
                *_rotate_right_at(x, "y", _new_rank(xp, x)),
                SAssertLCAndRemove(x),
                SAssertLCAndRemove(y),
                SAssign(out_var, y),
            ],
        ),
    ]


def _okasaki_balance_right(out_var):
    return [
        SIf(
            and_(nonnil(F(tmp, "r")), not_(_is_black(F(tmp, "r")))),
            [
                # case R-R: left rotation at x
                SMut(F(tmp, "r"), "black", EBool(True)),
                SMut(F(tmp, "r"), "bh", add(F(tmp, "r", "bh"), I(1))),
                SAssertLCAndRemove(F(tmp, "r")),
                SAssign("y", tmp),
                *_rotate_left_at(x, "y", _new_rank(xp, x)),
                SAssertLCAndRemove(x),
                SAssertLCAndRemove(y),
                SAssign(out_var, y),
            ],
            [
                # case R-L
                SAssign("z", F(tmp, "l")),
                SInferLCOutsideBr(z),
                SMut(tmp, "black", EBool(True)),
                SAssign("y", tmp),
                # right-rotate (y, z)
                SAssign("w", F(z, "r")),
                SMut(y, "l", V("w")),
                SMut(z, "r", y),
                SMut(z, "p", NIL_E),
                SIf(nonnil(V("w")), [SMut(V("w"), "p", y)], []),
                SAssertLCAndRemove(V("w")),
                *_refresh_measures(y),
                SMut(y, "p", z),
                SMut(z, "rank", E.div(add(F(x, "rank"), F(y, "rank")), E.R(2))),
                SAssertLCAndRemove(y),
                *_refresh_measures(z),
                SMut(x, "r", z),
                SMut(z, "p", x),
                SAssertLCAndRemove(y),
                SAssign("y", F(x, "r")),
                *_rotate_left_at(x, "y", _new_rank(xp, x)),
                SAssertLCAndRemove(x),
                SAssertLCAndRemove(y),
                SAssign(out_var, y),
            ],
        ),
    ]


def proc_rbt_insert_rec():
    """Inner insertion: may return an 'infrared' subtree (red root with one
    red child), signalled by the root remaining in the broken set."""
    fresh = diff(E.ALLOC, old(E.ALLOC))
    pending = and_(not_(F(r, "black")), not_(old(F(x, "black"))))
    return mkproc(
        "rbt_insert_rec",
        params=[("x", LOC), ("k", INT)],
        outs=[("r", LOC)],
        requires=[EMPTY_BR, nonnil(x), LC(x)],
        ensures=[
            subset(
                E.BR,
                union(
                    ite(isnil(old(F(x, "p"))), empty_loc_set(), singleton(old(F(x, "p")))),
                    singleton(r),
                ),
            ),
            nonnil(r),
            rbt_partial_lc_at(r),
            implies(old(F(x, "black")), and_(LC(r), not_(member(r, E.BR)))),
            implies(not_(member(r, E.BR)), LC(r)),
            isnil(F(r, "p")),
            eq(F(r, "keys"), union(old(F(x, "keys")), singleton(k))),
            subset(old(F(x, "hs")), F(r, "hs")),
            subset(F(r, "hs"), union(old(F(x, "hs")), fresh)),
            implies(
                isnil(old(F(x, "p"))),
                le(F(r, "rank"), add(old(F(x, "rank")), E.R(1))),
            ),
            implies(
                nonnil(old(F(x, "p"))),
                lt(F(r, "rank"), old(F(x, "p", "rank"))),
            ),
            ge(F(r, "min"), ite(lt(k, old(F(x, "min"))), k, old(F(x, "min")))),
            le(F(r, "max"), ite(gt(k, old(F(x, "max"))), k, old(F(x, "max")))),
            eq(F(r, "bh"), old(F(x, "bh"))),
        ],
        modifies=F(x, "hs"),
        locals={"z": LOC, "tmp": LOC, "y": LOC, "xp": LOC, "w": LOC},
        body=[
            SInferLCOutsideBr(x),
            SInferLCOutsideBr(F(x, "p")),
            SAssign("xp", F(x, "p")),
            SIf(
                eq(k, F(x, "key")),
                [
                    SMut(x, "p", NIL_E),
                    SAssertLCAndRemove(x),
                    SAssign("r", x),
                ],
                [
                    SIf(
                        lt(k, F(x, "key")),
                        [
                            SAssign("y", F(x, "l")),
                            SIf(
                                isnil(F(x, "l")),
                                [
                                    SNewObj("z"),
                                    SMut(z, "key", k),
                                    SMut(z, "rank", sub(F(x, "rank"), E.R(1))),
                                    SMut(z, "min", k),
                                    SMut(z, "max", k),
                                    SMut(z, "keys", singleton(k)),
                                    SMut(z, "hs", singleton(z)),
                                    SMut(z, "black", EBool(False)),
                                    SMut(z, "bh", I(0)),
                                    SAssign("tmp", z),
                                ],
                                [
                                    SInferLCOutsideBr(y),
                                    SCall(("tmp",), "rbt_insert_rec", (y, k)),
                                    SInferLCOutsideBr(y),
                                ],
                            ),
                            SMut(x, "l", tmp),
                            # when the recursion returned y itself (possibly
                            # infrared), its repair happens below
                            SIf(ne(y, tmp), [SAssertLCAndRemove(y)], []),
                            SMut(tmp, "p", x),
                            *_refresh_measures(x),
                            SMut(x, "p", NIL_E),
                            SIf(
                                and_(
                                    F(x, "black"),
                                    not_(_is_black(tmp)),
                                    or_(
                                        and_(nonnil(F(tmp, "l")), not_(_is_black(F(tmp, "l")))),
                                        and_(nonnil(F(tmp, "r")), not_(_is_black(F(tmp, "r")))),
                                    ),
                                ),
                                [
                                    # black parent repairs the infrared child
                                    *_okasaki_balance_left("r"),
                                ],
                                [
                                    SAssertLCAndRemove(tmp),
                                    # x red with red tmp: the infrared case --
                                    # x stays broken for the caller to repair
                                    SIf(
                                        or_(F(x, "black"), _is_black(tmp)),
                                        [SAssertLCAndRemove(x)],
                                        [],
                                    ),
                                    SAssign("r", x),
                                ],
                            ),
                        ],
                        [
                            SAssign("y", F(x, "r")),
                            SIf(
                                isnil(F(x, "r")),
                                [
                                    SNewObj("z"),
                                    SMut(z, "key", k),
                                    SMut(z, "rank", sub(F(x, "rank"), E.R(1))),
                                    SMut(z, "min", k),
                                    SMut(z, "max", k),
                                    SMut(z, "keys", singleton(k)),
                                    SMut(z, "hs", singleton(z)),
                                    SMut(z, "black", EBool(False)),
                                    SMut(z, "bh", I(0)),
                                    SAssign("tmp", z),
                                ],
                                [
                                    SInferLCOutsideBr(y),
                                    SCall(("tmp",), "rbt_insert_rec", (y, k)),
                                    SInferLCOutsideBr(y),
                                ],
                            ),
                            SMut(x, "r", tmp),
                            # when the recursion returned y itself (possibly
                            # infrared), its repair happens below
                            SIf(ne(y, tmp), [SAssertLCAndRemove(y)], []),
                            SMut(tmp, "p", x),
                            *_refresh_measures(x),
                            SMut(x, "p", NIL_E),
                            SIf(
                                and_(
                                    F(x, "black"),
                                    not_(_is_black(tmp)),
                                    or_(
                                        and_(nonnil(F(tmp, "l")), not_(_is_black(F(tmp, "l")))),
                                        and_(nonnil(F(tmp, "r")), not_(_is_black(F(tmp, "r")))),
                                    ),
                                ),
                                [
                                    *_okasaki_balance_right("r"),
                                ],
                                [
                                    SAssertLCAndRemove(tmp),
                                    # x red with red tmp: the infrared case --
                                    # x stays broken for the caller to repair
                                    SIf(
                                        or_(F(x, "black"), _is_black(tmp)),
                                        [SAssertLCAndRemove(x)],
                                        [],
                                    ),
                                    SAssign("r", x),
                                ],
                            ),
                        ],
                    ),
                ],
            ),
        ],
        is_well_behaved=True,
    )


def proc_rbt_insert():
    """Public insert: blacken the final root (Okasaki's outer step)."""
    fresh = diff(E.ALLOC, old(E.ALLOC))
    return mkproc(
        "rbt_insert",
        params=[("x", LOC), ("k", INT)],
        outs=[("r", LOC)],
        requires=[EMPTY_BR, nonnil(x), LC(x), isnil(F(x, "p")), F(x, "black")],
        ensures=[
            EMPTY_BR,
            nonnil(r),
            LC(r),
            isnil(F(r, "p")),
            F(r, "black"),
            eq(F(r, "keys"), union(old(F(x, "keys")), singleton(k))),
            subset(F(r, "hs"), union(old(F(x, "hs")), fresh)),
        ],
        modifies=F(x, "hs"),
        locals={"tmp": LOC},
        body=[
            SCall(("tmp",), "rbt_insert_rec", (x, k)),
            SIf(
                not_(F(tmp, "black")),
                [
                    SMut(tmp, "black", EBool(True)),
                    SMut(tmp, "bh", add(F(tmp, "bh"), I(1))),
                ],
                [],
            ),
            SAssertLCAndRemove(tmp),
            SAssign("r", tmp),
        ],
    )


def rbt_program() -> Program:
    procs = [
        proc_rbt_find_min(),
        proc_rbt_insert_rec(),
        proc_rbt_insert(),
    ]
    return Program(rbt_signature(), {p.name: p for p in procs})


METHODS = ["rbt_insert", "rbt_find_min", "rbt_insert_rec"]


def build_rbt(sig, first_key):
    """Bootstrap builder: a single black root; grow with rbt_insert."""
    from fractions import Fraction

    from ..lang.semantics import Heap

    heap = Heap(sig)
    node = heap.new_object()
    heap.write(node, "key", first_key)
    heap.write(node, "rank", Fraction(1000))
    heap.write(node, "black", True)
    heap.write(node, "bh", 1)
    heap.write(node, "min", first_key)
    heap.write(node, "max", first_key)
    heap.write(node, "keys", frozenset([first_key]))
    heap.write(node, "hs", frozenset([node]))
    return heap, node
