"""Sorted lists: the paper's running example (Sections 3-4, Appendix D).

Two variants are defined here:

- :func:`sorted_ids` -- the Section 4.1 definition (Equation 2): monadic
  maps ``prev``, ``length``, ``keys``, ``hslist`` with sortedness baked
  into the next-edge condition; used by find / insert / delete-all / merge.
- :func:`sortedrev_ids` -- the Section 4.2 / Appendix D.3 extension with
  optional ``sorted`` / ``rev_sorted`` direction flags, used by Reverse
  (turning an ascending list into a descending one in place).

``sorted_insert`` below is a statement-for-statement transliteration of
Figure 7 of the paper.
"""

from __future__ import annotations

from ..core.ids import IntrinsicDefinition
from ..lang import exprs as E
from ..lang.ast import (
    ClassSignature,
    Program,
    SAssertLCAndRemove,
    SAssign,
    SCall,
    SIf,
    SInferLCOutsideBr,
    SMut,
    SNewObj,
    SWhile,
)
from ..lang.exprs import (
    B,
    F,
    I,
    NIL_E,
    V,
    add,
    all_ge,
    and_,
    diff,
    empty_loc_set,
    eq,
    iff,
    implies,
    ite,
    le,
    member,
    ne,
    not_,
    old,
    or_,
    singleton,
    subset,
    union,
)
from ..smt.sorts import BOOL, INT, LOC, SET_INT, SET_LOC
from .common import EMPTY_BR, X, isnil, mkproc, nonnil

__all__ = ["sorted_ids", "sorted_program", "sortedrev_ids", "sortedrev_program", "METHODS"]


def sorted_signature() -> ClassSignature:
    return ClassSignature(
        name="SortedList",
        fields={"next": LOC, "key": INT},
        ghosts={"prev": LOC, "length": INT, "keys": SET_INT, "hslist": SET_LOC},
    )


def sorted_lc() -> E.Expr:
    """Equation (2) of the paper, plus the pointwise suffix bound
    ``all_ge(keys(x), key(x))`` that makes the complete find contract
    provable (the generalized-array-theory gadget, Section 5.1)."""
    nxt = F(X, "next")
    return and_(
        all_ge(F(X, "keys"), F(X, "key")),
        implies(
            nonnil(nxt),
            and_(
                le(F(X, "key"), F(X, "next", "key")),
                eq(F(X, "next", "prev"), X),
                eq(F(X, "length"), add(I(1), F(X, "next", "length"))),
                eq(F(X, "keys"), union(singleton(F(X, "key")), F(X, "next", "keys"))),
                eq(F(X, "hslist"), union(singleton(X), F(X, "next", "hslist"))),
                not_(member(X, F(X, "next", "hslist"))),
            ),
        ),
        implies(nonnil(F(X, "prev")), eq(F(X, "prev", "next"), X)),
        implies(
            isnil(nxt),
            and_(
                eq(F(X, "length"), I(1)),
                eq(F(X, "keys"), singleton(F(X, "key"))),
                eq(F(X, "hslist"), singleton(X)),
            ),
        ),
    )


_IMPACT = {
    "next": [X, E.old(F(X, "next"))],
    "key": [X, F(X, "prev")],
    "prev": [X, E.old(F(X, "prev"))],
    "length": [X, F(X, "prev")],
    "keys": [X, F(X, "prev")],
    "hslist": [X, F(X, "prev")],
}


def sorted_ids() -> IntrinsicDefinition:
    return IntrinsicDefinition(
        name="Sorted List",
        sig=sorted_signature(),
        lc_parts={"Br": sorted_lc()},
        correlation=isnil(F(X, "prev")),
        impact=dict(_IMPACT),
    )


# ---------------------------------------------------------------------------
# Reversal variant (Section 4.2 / Appendix D.3): direction flags
# ---------------------------------------------------------------------------


def sortedrev_signature() -> ClassSignature:
    sig = sorted_signature()
    sig.ghosts = dict(sig.ghosts)
    sig.ghosts["sorted"] = BOOL
    sig.ghosts["rev_sorted"] = BOOL
    return sig


def sortedrev_lc() -> E.Expr:
    """Appendix D.3 (Figure 9): sortedness is optional and directed."""
    nxt = F(X, "next")
    return and_(
        implies(nonnil(F(X, "prev")), eq(F(X, "prev", "next"), X)),
        implies(
            nonnil(nxt),
            and_(
                eq(F(X, "next", "prev"), X),
                eq(F(X, "length"), add(I(1), F(X, "next", "length"))),
                eq(F(X, "keys"), union(singleton(F(X, "key")), F(X, "next", "keys"))),
                eq(F(X, "hslist"), union(singleton(X), F(X, "next", "hslist"))),
                not_(member(X, F(X, "next", "hslist"))),
                implies(
                    F(X, "sorted"),
                    le(F(X, "key"), F(X, "next", "key")),
                ),
                iff(F(X, "sorted"), F(X, "next", "sorted")),
                implies(
                    F(X, "rev_sorted"),
                    le(F(X, "next", "key"), F(X, "key")),
                ),
                iff(F(X, "rev_sorted"), F(X, "next", "rev_sorted")),
            ),
        ),
        implies(
            isnil(nxt),
            and_(
                eq(F(X, "length"), I(1)),
                eq(F(X, "keys"), singleton(F(X, "key"))),
                eq(F(X, "hslist"), singleton(X)),
            ),
        ),
    )


def sortedrev_ids() -> IntrinsicDefinition:
    impact = dict(_IMPACT)
    impact["sorted"] = [X, F(X, "prev")]
    impact["rev_sorted"] = [X, F(X, "prev")]
    return IntrinsicDefinition(
        name="Sorted List (reversal variant)",
        sig=sortedrev_signature(),
        lc_parts={"Br": sortedrev_lc()},
        correlation=isnil(F(X, "prev")),
        impact=impact,
    )


# ---------------------------------------------------------------------------
# Methods over the plain sorted-list definition
# ---------------------------------------------------------------------------

_ids = sorted_ids()
LC = lambda obj: _ids.lc_at(obj)  # noqa: E731
_rids = sortedrev_ids()
RLC = lambda obj: _rids.lc_at(obj)  # noqa: E731

x, y, z, k, r, tmp, cur, ret, b = (
    V("x"),
    V("y"),
    V("z"),
    V("k"),
    V("r"),
    V("tmp"),
    V("cur"),
    V("ret"),
    V("b"),
)


def proc_sorted_insert():
    """Figure 7 of the paper, statement for statement."""
    return mkproc(
        "sorted_insert",
        params=[("x", LOC), ("k", INT)],
        outs=[("r", LOC)],
        requires=[EMPTY_BR, nonnil(x), LC(x)],
        ensures=[
            LC(r),
            nonnil(r),
            isnil(F(r, "prev")),
            eq(
                E.BR,
                ite(
                    isnil(old(F(x, "prev"))),
                    empty_loc_set(),
                    singleton(old(F(x, "prev"))),
                ),
            ),
            eq(F(r, "length"), add(old(F(x, "length")), I(1))),
            eq(F(r, "keys"), union(old(F(x, "keys")), singleton(k))),
            subset(old(F(x, "hslist")), F(r, "hslist")),
        ],
        modifies=F(x, "hslist"),
        locals={"y": LOC, "z": LOC, "tmp": LOC},
        body=[
            SInferLCOutsideBr(x),
            SIf(
                E.ge(F(x, "key"), k),
                [  # k inserted before x
                    SNewObj("z"),
                    SMut(z, "key", k),
                    SMut(z, "next", x),
                    SMut(z, "hslist", union(singleton(z), F(x, "hslist"))),
                    SMut(z, "length", add(I(1), F(x, "length"))),
                    SMut(z, "keys", union(singleton(k), F(x, "keys"))),
                    SMut(x, "prev", z),
                    SAssertLCAndRemove(z),
                    SAssertLCAndRemove(x),
                    SAssign("r", z),
                ],
                [
                    SIf(
                        isnil(F(x, "next")),
                        [  # one-element list
                            SNewObj("z"),
                            SMut(z, "key", k),
                            SMut(z, "next", NIL_E),
                            SMut(z, "hslist", singleton(z)),
                            SMut(z, "length", I(1)),
                            SMut(z, "keys", singleton(k)),
                            SMut(x, "next", z),
                            SMut(z, "prev", x),
                            SAssertLCAndRemove(z),
                            SMut(x, "prev", NIL_E),
                            SMut(x, "hslist", union(singleton(x), singleton(z))),
                            SMut(x, "length", I(2)),
                            SMut(x, "keys", union(singleton(F(x, "key")), singleton(k))),
                            SAssertLCAndRemove(x),
                            SAssign("r", x),
                        ],
                        [  # recursive case
                            SAssign("y", F(x, "next")),
                            SInferLCOutsideBr(y),
                            SCall(("tmp",), "sorted_insert", (y, k)),
                            SInferLCOutsideBr(y),
                            SIf(
                                eq(F(y, "prev"), x),
                                [SMut(y, "prev", NIL_E)],
                                [],
                            ),
                            SMut(x, "next", tmp),
                            SAssertLCAndRemove(y),
                            SMut(tmp, "prev", x),
                            SAssertLCAndRemove(tmp),
                            SMut(x, "hslist", union(singleton(x), F(tmp, "hslist"))),
                            SMut(x, "length", add(I(1), F(tmp, "length"))),
                            SMut(x, "keys", union(singleton(F(x, "key")), F(tmp, "keys"))),
                            SMut(x, "prev", NIL_E),
                            SAssertLCAndRemove(x),
                            SAssign("r", x),
                        ],
                    ),
                ],
            ),
        ],
    )


def proc_sorted_find():
    """Search exploiting sortedness (early exit when key(x) > k)."""
    return mkproc(
        "sorted_find",
        params=[("x", LOC), ("k", INT)],
        outs=[("b", BOOL)],
        requires=[EMPTY_BR, nonnil(x), LC(x)],
        ensures=[EMPTY_BR, iff(b, member(k, old(F(x, "keys"))))],
        modifies=empty_loc_set(),
        body=[
            SInferLCOutsideBr(x),
            SIf(
                eq(F(x, "key"), k),
                [SAssign("b", B(True))],
                [
                    SIf(
                        or_(E.gt(F(x, "key"), k), isnil(F(x, "next"))),
                        [SAssign("b", B(False))],
                        [
                            SInferLCOutsideBr(F(x, "next")),
                            SCall(("b",), "sorted_find", (F(x, "next"), k)),
                        ],
                    )
                ],
            ),
        ],
    )


def proc_sorted_delete_all():
    """Delete every occurrence of k (sorted variant of the SLL method)."""
    fix_singleton = [
        SMut(x, "prev", NIL_E),
        SMut(x, "length", I(1)),
        SMut(x, "keys", singleton(F(x, "key"))),
        SMut(x, "hslist", singleton(x)),
    ]
    return mkproc(
        "sorted_delete_all",
        params=[("x", LOC), ("k", INT)],
        outs=[("r", LOC)],
        requires=[EMPTY_BR, nonnil(x), LC(x)],
        ensures=[
            eq(
                E.BR,
                ite(
                    isnil(old(F(x, "prev"))),
                    empty_loc_set(),
                    singleton(old(F(x, "prev"))),
                ),
            ),
            isnil(F(x, "prev")),
            implies(
                nonnil(r),
                and_(
                    LC(r),
                    isnil(F(r, "prev")),
                    eq(F(r, "keys"), diff(old(F(x, "keys")), singleton(k))),
                    subset(F(r, "hslist"), old(F(x, "hslist"))),
                    le(old(F(x, "key")), F(r, "key")),
                ),
            ),
            implies(isnil(r), subset(old(F(x, "keys")), singleton(k))),
        ],
        modifies=F(x, "hslist"),
        locals={"y": LOC, "tmp": LOC},
        body=[
            SInferLCOutsideBr(x),
            SIf(
                isnil(F(x, "next")),
                [
                    *fix_singleton,
                    SAssertLCAndRemove(x),
                    SIf(eq(F(x, "key"), k), [SAssign("r", NIL_E)], [SAssign("r", x)]),
                ],
                [
                    SAssign("y", F(x, "next")),
                    SInferLCOutsideBr(y),
                    SCall(("tmp",), "sorted_delete_all", (y, k)),
                    SInferLCOutsideBr(y),
                    SIf(
                        eq(F(x, "key"), k),
                        [
                            SMut(x, "next", NIL_E),
                            SAssertLCAndRemove(y),
                            *fix_singleton,
                            SAssertLCAndRemove(x),
                            SAssign("r", tmp),
                        ],
                        [
                            SIf(
                                isnil(tmp),
                                [
                                    SMut(x, "next", NIL_E),
                                    SAssertLCAndRemove(y),
                                    *fix_singleton,
                                    SAssertLCAndRemove(x),
                                ],
                                [
                                    SInferLCOutsideBr(tmp),
                                    SMut(x, "next", tmp),
                                    SAssertLCAndRemove(y),
                                    SMut(tmp, "prev", x),
                                    SAssertLCAndRemove(tmp),
                                    SMut(x, "prev", NIL_E),
                                    SMut(x, "length", add(I(1), F(tmp, "length"))),
                                    SMut(x, "keys", union(singleton(F(x, "key")), F(tmp, "keys"))),
                                    SMut(x, "hslist", union(singleton(x), F(tmp, "hslist"))),
                                    SAssertLCAndRemove(x),
                                ],
                            ),
                            SAssign("r", x),
                        ],
                    ),
                ],
            ),
        ],
    )


def proc_sorted_merge():
    """In-place merge of two sorted lists.

    The contract is symmetric in the Fig. 7 style: neither argument needs
    to be a list *head*; whatever used to point at the argument heads ends
    up in the broken set for the caller to repair.
    """
    opx = old(F(x, "prev"))
    opy = old(F(y, "prev"))
    br_post = eq(
        E.BR,
        union(
            ite(isnil(opx), empty_loc_set(), singleton(opx)),
            ite(
                or_(isnil(E.old(y)), isnil(opy)),
                empty_loc_set(),
                singleton(opy),
            ),
        ),
    )
    return mkproc(
        "sorted_merge",
        params=[("x", LOC), ("y", LOC)],
        outs=[("r", LOC)],
        requires=[
            EMPTY_BR,
            nonnil(x),
            LC(x),
            implies(
                nonnil(y),
                and_(
                    LC(y),
                    eq(E.inter(F(x, "hslist"), F(y, "hslist")), empty_loc_set()),
                ),
            ),
        ],
        ensures=[
            br_post,
            nonnil(r),
            LC(r),
            isnil(F(r, "prev")),
            eq(
                F(r, "keys"),
                ite(
                    isnil(E.old(y)),
                    old(F(x, "keys")),
                    union(old(F(x, "keys")), old(F(y, "keys"))),
                ),
            ),
            subset(
                F(r, "hslist"),
                ite(
                    isnil(E.old(y)),
                    old(F(x, "hslist")),
                    union(old(F(x, "hslist")), old(F(y, "hslist"))),
                ),
            ),
        ],
        modifies=ite(isnil(y), F(x, "hslist"), union(F(x, "hslist"), F(y, "hslist"))),
        locals={"z": LOC, "tmp": LOC},
        body=[
            SInferLCOutsideBr(x),
            SIf(
                isnil(y),
                [
                    SMut(x, "prev", NIL_E),
                    SAssertLCAndRemove(x),
                    SAssign("r", x),
                ],
                [
                    SInferLCOutsideBr(y),
                    SIf(
                        le(F(x, "key"), F(y, "key")),
                        [
                            SIf(
                                isnil(F(x, "next")),
                                [
                                    SMut(x, "next", y),
                                    SMut(y, "prev", x),
                                    SAssertLCAndRemove(y),
                                    SMut(x, "prev", NIL_E),
                                    SMut(x, "length", add(I(1), F(y, "length"))),
                                    SMut(x, "keys", union(singleton(F(x, "key")), F(y, "keys"))),
                                    SMut(x, "hslist", union(singleton(x), F(y, "hslist"))),
                                    SAssertLCAndRemove(x),
                                    SAssign("r", x),
                                ],
                                [
                                    SAssign("z", F(x, "next")),
                                    SInferLCOutsideBr(z),
                                    SCall(("tmp",), "sorted_merge", (z, y)),
                                    SInferLCOutsideBr(z),
                                    SIf(
                                        eq(F(z, "prev"), x),
                                        [SMut(z, "prev", NIL_E)],
                                        [],
                                    ),
                                    SMut(x, "next", tmp),
                                    SAssertLCAndRemove(z),
                                    SMut(tmp, "prev", x),
                                    SAssertLCAndRemove(tmp),
                                    SMut(x, "prev", NIL_E),
                                    SMut(x, "length", add(I(1), F(tmp, "length"))),
                                    SMut(x, "keys", union(singleton(F(x, "key")), F(tmp, "keys"))),
                                    SMut(x, "hslist", union(singleton(x), F(tmp, "hslist"))),
                                    SAssertLCAndRemove(x),
                                    SAssign("r", x),
                                ],
                            ),
                        ],
                        [
                            # y's head is smaller: recurse with roles swapped
                            SCall(("tmp",), "sorted_merge", (y, x)),
                            SAssign("r", tmp),
                        ],
                    ),
                ],
            ),
        ],
    )




def proc_sorted_reverse():
    """Section 4.2 / Appendix D.3: in-place reversal turning an ascending
    list into a descending one, flipping the sorted/rev_sorted flags."""
    cur, ret, tmp = V("cur"), V("ret"), V("tmp")
    RL = RLC  # the reversal-variant local condition
    inv_cur = implies(
        nonnil(cur), and_(RL(cur), isnil(F(cur, "prev")), F(cur, "sorted"))
    )
    inv_ret = implies(
        nonnil(ret), and_(RL(ret), isnil(F(ret, "prev")), F(ret, "rev_sorted"))
    )
    inv_order = implies(
        and_(nonnil(cur), nonnil(ret)),
        le(F(ret, "key"), F(cur, "key")),
    )
    inv_disjoint = implies(
        and_(nonnil(cur), nonnil(ret)),
        eq(E.inter(F(cur, "hslist"), F(ret, "hslist")), empty_loc_set()),
    )
    inv_keys = eq(
        old(F(x, "keys")),
        E.ite(
            isnil(cur),
            E.ite(isnil(ret), E.empty_int_set(), F(ret, "keys")),
            E.ite(
                isnil(ret),
                F(cur, "keys"),
                union(F(cur, "keys"), F(ret, "keys")),
            ),
        ),
    )
    inv_hslist = eq(
        old(F(x, "hslist")),
        E.ite(
            isnil(cur),
            E.ite(isnil(ret), empty_loc_set(), F(ret, "hslist")),
            E.ite(
                isnil(ret),
                F(cur, "hslist"),
                union(F(cur, "hslist"), F(ret, "hslist")),
            ),
        ),
    )
    return mkproc(
        "sorted_reverse",
        params=[("x", LOC)],
        outs=[("ret", LOC)],
        requires=[
            EMPTY_BR,
            nonnil(x),
            RL(x),
            isnil(F(x, "prev")),
            F(x, "sorted"),
        ],
        ensures=[
            EMPTY_BR,
            nonnil(ret),
            RL(ret),
            isnil(F(ret, "prev")),
            F(ret, "rev_sorted"),
            eq(F(ret, "keys"), old(F(x, "keys"))),
            eq(F(ret, "hslist"), old(F(x, "hslist"))),
        ],
        modifies=F(x, "hslist"),
        locals={"cur": LOC, "tmp": LOC},
        body=[
            SAssign("cur", x),
            SAssign("ret", NIL_E),
            SWhile(
                ne(cur, NIL_E),
                invariants=[
                    EMPTY_BR,
                    or_(nonnil(cur), nonnil(ret)),
                    inv_cur,
                    inv_ret,
                    inv_order,
                    inv_disjoint,
                    inv_keys,
                    inv_hslist,
                ],
                body=[
                    SInferLCOutsideBr(cur, broken_set="Br"),
                    SAssign("tmp", F(cur, "next")),
                    SIf(
                        ne(tmp, NIL_E),
                        [
                            SInferLCOutsideBr(tmp),
                            SMut(tmp, "prev", NIL_E),
                        ],
                        [],
                    ),
                    SMut(cur, "next", ret),
                    SIf(ne(ret, NIL_E), [SMut(ret, "prev", cur)], []),
                    SIf(
                        ne(ret, NIL_E),
                        [
                            SMut(cur, "length", add(I(1), F(ret, "length"))),
                            SMut(cur, "keys", union(singleton(F(cur, "key")), F(ret, "keys"))),
                            SMut(cur, "hslist", union(singleton(cur), F(ret, "hslist"))),
                        ],
                        [
                            SMut(cur, "length", I(1)),
                            SMut(cur, "keys", singleton(F(cur, "key"))),
                            SMut(cur, "hslist", singleton(cur)),
                        ],
                    ),
                    SMut(cur, "sorted", E.B(False) if False else E.EBool(False)),
                    SMut(cur, "rev_sorted", E.EBool(True)),
                    SMut(cur, "prev", NIL_E),
                    SAssertLCAndRemove(ret),
                    SAssertLCAndRemove(cur),
                    SAssertLCAndRemove(tmp),
                    SAssign("ret", cur),
                    SAssign("cur", tmp),
                ],
            ),
        ],
    )


def sortedrev_program() -> Program:
    procs = [proc_sorted_reverse()]
    return Program(sortedrev_signature(), {p.name: p for p in procs})


def sorted_program() -> Program:
    procs = [
        proc_sorted_insert(),
        proc_sorted_find(),
        proc_sorted_delete_all(),
        proc_sorted_merge(),
    ]
    return Program(sorted_signature(), {p.name: p for p in procs})


METHODS = ["sorted_delete_all", "sorted_find", "sorted_insert", "sorted_merge"]
