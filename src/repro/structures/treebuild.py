"""Concrete tree-heap builders for the runtime tests and examples."""

from __future__ import annotations

from fractions import Fraction
from typing import List, Optional, Tuple

from ..lang.ast import ClassSignature
from ..lang.semantics import Heap, Obj

__all__ = ["build_bst", "bst_keys_inorder", "validate_bst_heap"]


def build_bst(sig: ClassSignature, keys: List[int]) -> Tuple[Heap, Optional[Obj]]:
    """Build a balanced BST over ``sorted(set(keys))`` with all ghost maps
    (p, rank, min, max, keys, hs) computed correctly."""
    heap = Heap(sig)
    uniq = sorted(set(keys))

    def rec(lo: int, hi: int, depth: int) -> Optional[Obj]:
        if lo > hi:
            return None
        mid = (lo + hi) // 2
        node = heap.new_object()
        heap.write(node, "key", uniq[mid])
        left = rec(lo, mid - 1, depth + 1)
        right = rec(mid + 1, hi, depth + 1)
        heap.write(node, "l", left)
        heap.write(node, "r", right)
        heap.write(node, "rank", Fraction(100 - depth))
        ks = {uniq[mid]}
        hs = {node}
        mn = mx = uniq[mid]
        for child in (left, right):
            if child is not None:
                heap.write(child, "p", node)
                ks |= heap.read(child, "keys")
                hs |= heap.read(child, "hs")
        if left is not None:
            mn = heap.read(left, "min")
        if right is not None:
            mx = heap.read(right, "max")
        heap.write(node, "keys", frozenset(ks))
        heap.write(node, "hs", frozenset(hs))
        heap.write(node, "min", mn)
        heap.write(node, "max", mx)
        return node

    root = rec(0, len(uniq) - 1, 0)
    return heap, root


def bst_keys_inorder(heap: Heap, root: Optional[Obj]) -> List[int]:
    if root is None:
        return []
    return (
        bst_keys_inorder(heap, heap.read(root, "l"))
        + [heap.read(root, "key")]
        + bst_keys_inorder(heap, heap.read(root, "r"))
    )


def validate_bst_heap(heap: Heap, root: Optional[Obj]) -> bool:
    keys = bst_keys_inorder(heap, root)
    return keys == sorted(keys)
