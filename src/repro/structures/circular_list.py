"""Circular lists with a scaffolding node (Section 4.3 / Appendix D.4).

Every node of a circular list sees the distinguished *scaffolding* node
through the ``last`` monadic map; the scaffolding closes the cycle and is
never deleted.  ``length`` counts forward distance to the scaffolding,
``rev_length`` backward distance (the ghost-loop termination measures).
``keys``/``hslist`` accumulate along the forward path and *stop before the
scaffolding*; the scaffolding itself accumulates the entire circle (so
``x in hslist(last(x))`` holds for every node, the Fig. 10 conjunct that
bounds the impact sets).

Following Table 4 of the paper:

- ``last`` and ``hslist`` mutations carry a *mutation precondition*
  (non-scaffolding, or an empty scaffolding);
- scaffolding updates go through guarded custom macros with impact ``{x}``:
  ``AddToLastHsList`` (grow-only), ``RemoveFromLastHsList`` (removes a node
  already detached from the circle), and a scaffolding ``keys`` refresh.

Insert-Back and Delete-Back repair keys/length/hslist with a *backward*
ghost loop (following ``prev``, decreasing ``rev_length``); Insert-Front
and Delete-Front repair ``rev_length`` with a *forward* ghost loop
(decreasing ``length``).
"""

from __future__ import annotations

from ..core.ids import AUX_VAR, CustomMutation, IntrinsicDefinition, VAL_VAR
from ..lang import exprs as E
from ..lang.ast import (
    ClassSignature,
    Program,
    SAssertLCAndRemove,
    SAssign,
    SIf,
    SInferLCOutsideBr,
    SMut,
    SNewObj,
    SWhile,
)
from ..lang.exprs import (
    F,
    I,
    V,
    add,
    and_,
    diff,
    empty_int_set,
    eq,
    ge,
    implies,
    ite,
    member,
    ne,
    not_,
    old,
    or_,
    singleton,
    subset,
    union,
)
from ..smt.sorts import INT, LOC, SET_INT, SET_LOC
from .common import EMPTY_BR, X, mkproc, nonnil

__all__ = ["circular_ids", "circular_program", "build_circular", "METHODS"]


def circular_signature() -> ClassSignature:
    return ClassSignature(
        name="CircularList",
        fields={"next": LOC, "key": INT},
        ghosts={
            "prev": LOC,
            "last": LOC,
            "length": INT,
            "rev_length": INT,
            "keys": SET_INT,
            "hslist": SET_LOC,
        },
    )


def circular_lc() -> E.Expr:
    nxt, prv, last = F(X, "next"), F(X, "prev"), F(X, "last")
    return and_(
        nonnil(nxt),
        nonnil(prv),
        nonnil(last),
        eq(F(X, "prev", "next"), X),
        eq(F(X, "next", "prev"), X),
        eq(F(X, "next", "last"), last),
        eq(F(X, "last", "last"), last),
        member(X, F(X, "last", "hslist")),
        ge(F(X, "length"), I(0)),
        ge(F(X, "rev_length"), I(0)),
        implies(
            eq(last, X),
            and_(eq(F(X, "length"), I(0)), eq(F(X, "rev_length"), I(0))),
        ),
        implies(
            ne(last, X),
            and_(
                eq(F(X, "length"), add(F(X, "next", "length"), I(1))),
                eq(F(X, "rev_length"), add(F(X, "prev", "rev_length"), I(1))),
            ),
        ),
        # keys / heaplet accumulate forward and stop before the scaffolding
        implies(
            and_(ne(last, X), eq(nxt, last)),
            and_(
                eq(F(X, "keys"), singleton(F(X, "key"))),
                eq(F(X, "hslist"), singleton(X)),
            ),
        ),
        implies(
            and_(ne(last, X), ne(nxt, last)),
            and_(
                eq(F(X, "keys"), union(singleton(F(X, "key")), F(X, "next", "keys"))),
                eq(F(X, "hslist"), union(singleton(X), F(X, "next", "hslist"))),
                not_(member(X, F(X, "next", "hslist"))),
            ),
        ),
        # the scaffolding accumulates the whole circle
        implies(
            and_(eq(last, X), eq(nxt, X)),
            and_(
                eq(F(X, "keys"), empty_int_set()),
                eq(F(X, "hslist"), singleton(X)),
            ),
        ),
        implies(
            and_(eq(last, X), ne(nxt, X)),
            and_(
                eq(F(X, "keys"), F(X, "next", "keys")),
                eq(F(X, "hslist"), union(singleton(X), F(X, "next", "hslist"))),
                not_(member(X, F(X, "next", "hslist"))),
            ),
        ),
    )


_NOT_POPULATED_SCAFFOLD = or_(
    ne(F(X, "last"), X),
    eq(F(X, "hslist"), singleton(X)),
)


def circular_ids() -> IntrinsicDefinition:
    return IntrinsicDefinition(
        name="Circular List",
        sig=circular_signature(),
        lc_parts={"Br": circular_lc()},
        correlation=eq(F(X, "last"), X),
        impact={
            "next": [X, E.old(F(X, "next"))],
            "prev": [X, E.old(F(X, "prev"))],
            "key": [X, F(X, "prev")],
            "last": [X, F(X, "prev")],
            "length": [X, F(X, "prev")],
            "rev_length": [X, F(X, "next")],
            "keys": [X, F(X, "prev")],
            "hslist": [X, F(X, "prev")],
        },
        mut_pre={
            # Table 4: only non-scaffoldings (or empty scaffoldings) may
            # change `last`/`hslist` directly, else the impact is unbounded.
            "last": _NOT_POPULATED_SCAFFOLD,
            "hslist": _NOT_POPULATED_SCAFFOLD,
        },
        custom_muts={
            # the paper's AddToLastHsList: scaffolding heaplet grows
            "add_last_hslist": CustomMutation(
                field="hslist",
                impact=[X],
                pre=eq(F(X, "last"), X),
                val_constraint=subset(F(X, "hslist"), VAL_VAR),
            ),
            # removal of an already-detached node from the scaffolding heaplet
            "remove_last_hslist": CustomMutation(
                field="hslist",
                impact=[X],
                pre=eq(F(X, "last"), X),
                val_constraint=and_(
                    eq(VAL_VAR, diff(F(X, "hslist"), singleton(AUX_VAR))),
                    nonnil(AUX_VAR),
                    ne(F(AUX_VAR, "last"), X),
                ),
            ),
            # scaffolding keys refresh (reads of keys(scaffold) are guarded
            # away by the accumulation stop, so the impact is just {x})
            "scaffold_keys": CustomMutation(
                field="keys",
                impact=[X],
                pre=eq(F(X, "last"), X),
            ),
        },
        steering_ghosts=frozenset({"prev", "last"}),
    )


_ids = circular_ids()
LC = lambda obj: _ids.lc_at(obj)  # noqa: E731

x, z, k, r, cur, lastv, n1, n2 = (
    V("x"),
    V("z"),
    V("k"),
    V("r"),
    V("cur"),
    V("lastv"),
    V("n1"),
    V("n2"),
)


def _detach_to_singleton(node):
    """Turn a node unlinked from the circle into a valid empty scaffolding."""
    return [
        SMut(node, "next", node),
        SMut(node, "prev", node),
        SMut(node, "length", I(0)),
        SMut(node, "rev_length", I(0)),
        SMut(node, "keys", empty_int_set()),
        SMut(node, "hslist", singleton(node)),
        SMut(node, "last", node),
    ]


def _lagging_common():
    return and_(
        nonnil(F(cur, "next")),
        nonnil(F(cur, "prev")),
        eq(F(cur, "prev", "next"), cur),
        eq(F(cur, "next", "prev"), cur),
        eq(F(cur, "last"), lastv),
        eq(F(cur, "next", "last"), lastv),
        member(cur, F(lastv, "hslist")),
        eq(F(cur, "rev_length"), add(F(cur, "prev", "rev_length"), I(1))),
        ge(F(cur, "rev_length"), I(0)),
        ge(F(cur, "prev", "rev_length"), I(0)),
        ne(F(cur, "next"), lastv),
        not_(member(cur, F(cur, "next", "hslist"))),
    )


def _backward_keys_loop(protect=(), removed_key=None, removed_node=None):
    """Backward ghost repair of keys/length/hslist (insert/delete-back)."""
    if removed_key is None:
        lag_keys = or_(
            eq(
                F(cur, "keys"),
                diff(
                    union(singleton(F(cur, "key")), F(cur, "next", "keys")),
                    singleton(k),
                ),
            ),
            eq(F(cur, "keys"), union(singleton(F(cur, "key")), F(cur, "next", "keys"))),
        )
        lag_hs = eq(
            F(cur, "hslist"),
            diff(
                union(singleton(cur), F(cur, "next", "hslist")),
                singleton(z),
            ),
        )
        lag_len = eq(F(cur, "length"), F(cur, "next", "length"))
        carried = member(k, F(cur, "next", "keys"))
    else:
        lag_keys = or_(
            eq(
                F(cur, "keys"),
                union(
                    singleton(removed_key),
                    union(singleton(F(cur, "key")), F(cur, "next", "keys")),
                ),
            ),
            eq(F(cur, "keys"), union(singleton(F(cur, "key")), F(cur, "next", "keys"))),
        )
        lag_hs = eq(
            F(cur, "hslist"),
            union(
                singleton(removed_node),
                union(singleton(cur), F(cur, "next", "hslist")),
            ),
        )
        lag_len = eq(F(cur, "length"), add(F(cur, "next", "length"), I(2)))
        carried = not_(member(removed_node, F(cur, "next", "hslist")))
    lagging = and_(_lagging_common(), lag_len, lag_keys, lag_hs, carried)
    invs = [
        nonnil(cur),
        eq(F(lastv, "last"), lastv),
        subset(E.BR, union(singleton(cur), singleton(lastv))),
        implies(ne(cur, lastv), lagging),
    ]
    for v in protect:
        invs.insert(1, ne(cur, v))
    body = [
        SInferLCOutsideBr(F(cur, "prev")),
        SMut(cur, "keys", union(singleton(F(cur, "key")), F(cur, "next", "keys"))),
        SMut(cur, "length", add(F(cur, "next", "length"), I(1))),
        SMut(cur, "hslist", union(singleton(cur), F(cur, "next", "hslist"))),
        SAssertLCAndRemove(cur),
        SAssign("cur", F(cur, "prev")),
    ]
    return SWhile(
        ne(cur, lastv),
        invariants=invs,
        body=body,
        decreases=F(cur, "rev_length"),
        is_ghost=True,
    )


def _forward_rev_loop():
    """Forward ghost repair of rev_length (insert/delete-front)."""
    lagging = and_(
        nonnil(F(cur, "next")),
        nonnil(F(cur, "prev")),
        eq(F(cur, "prev", "next"), cur),
        eq(F(cur, "next", "prev"), cur),
        eq(F(cur, "last"), lastv),
        eq(F(cur, "next", "last"), lastv),
        member(cur, F(lastv, "hslist")),
        eq(F(cur, "length"), add(F(cur, "next", "length"), I(1))),
        ge(F(cur, "length"), I(0)),
        ge(F(cur, "next", "length"), I(0)),
        ge(F(cur, "prev", "rev_length"), I(0)),
    )
    invs = [
        nonnil(cur),
        eq(F(lastv, "last"), lastv),
        subset(E.BR, union(singleton(cur), singleton(lastv))),
        implies(ne(cur, lastv), lagging),
    ]
    body = [
        SInferLCOutsideBr(F(cur, "next")),
        SMut(cur, "rev_length", add(F(cur, "prev", "rev_length"), I(1))),
        SAssertLCAndRemove(cur),
        SAssign("cur", F(cur, "next")),
    ]
    return SWhile(
        ne(cur, lastv),
        invariants=invs,
        body=body,
        decreases=F(cur, "length"),
        is_ghost=True,
    )


def proc_insert_back():
    """Insert k just before the scaffolding.  x is the current back node
    (next(x) = last(x)); x is the scaffolding itself iff the circle is
    empty."""
    return mkproc(
        "circ_insert_back",
        params=[("x", LOC), ("k", INT)],
        outs=[("r", LOC)],
        requires=[EMPTY_BR, nonnil(x), LC(x), eq(F(x, "next"), F(x, "last"))],
        ensures=[
            EMPTY_BR,
            nonnil(r),
            LC(r),
            eq(F(r, "key"), k),
            eq(F(x, "next"), r),
            member(k, F(x, "last", "keys")),
            member(r, F(x, "last", "hslist")),
        ],
        modifies=F(x, "last", "hslist"),
        locals={"z": LOC, "lastv": LOC},
        ghost_locals={"cur": LOC},
        body=[
            SInferLCOutsideBr(x),
            SAssign("lastv", F(x, "last")),
            SInferLCOutsideBr(lastv),
            SInferLCOutsideBr(F(x, "prev")),
            SNewObj("z"),
            SMut(z, "key", k),
            SMut(z, "last", lastv),
            SMut(z, "next", lastv),
            SMut(z, "prev", x),
            SMut(z, "length", add(F(lastv, "length"), I(1))),
            SMut(z, "rev_length", add(F(x, "rev_length"), I(1))),
            SMut(z, "keys", singleton(k)),
            SMut(z, "hslist", singleton(z)),
            SMut(x, "next", z),
            SMut(lastv, "prev", z),
            SMut(
                lastv,
                "hslist",
                union(F(lastv, "hslist"), singleton(z)),
                variant="add_last_hslist",
            ),
            SAssertLCAndRemove(z),
            SAssign("r", z),
            SIf(
                eq(x, lastv),
                [
                    # empty circle: just refresh the scaffolding keys
                    SMut(lastv, "keys", F(z, "keys"), variant="scaffold_keys"),
                    SAssertLCAndRemove(lastv),
                ],
                [
                    SMut(x, "keys", union(singleton(F(x, "key")), F(z, "keys"))),
                    SMut(x, "length", add(F(z, "length"), I(1))),
                    SMut(x, "hslist", union(singleton(x), F(z, "hslist"))),
                    SAssertLCAndRemove(x),
                    SAssign("cur", F(x, "prev")),
                    _backward_keys_loop(protect=(x, z)),
                    SMut(lastv, "keys", F(lastv, "next", "keys"), variant="scaffold_keys"),
                    SAssertLCAndRemove(lastv),
                ],
            ),
        ],
    )


def proc_insert_front():
    """Insert k right after the scaffolding x."""
    return mkproc(
        "circ_insert_front",
        params=[("x", LOC), ("k", INT)],
        outs=[("r", LOC)],
        requires=[EMPTY_BR, nonnil(x), LC(x), eq(F(x, "last"), x)],
        ensures=[
            EMPTY_BR,
            nonnil(r),
            LC(r),
            eq(F(r, "key"), k),
            eq(F(x, "next"), r),
            eq(F(x, "keys"), union(old(F(x, "keys")), singleton(k))),
            member(r, F(x, "hslist")),
        ],
        modifies=singleton(x),
        locals={"z": LOC, "lastv": LOC, "n1": LOC},
        ghost_locals={"cur": LOC},
        body=[
            SInferLCOutsideBr(x),
            SAssign("lastv", x),
            SAssign("n1", F(x, "next")),
            SInferLCOutsideBr(n1),
            SNewObj("z"),
            SMut(z, "key", k),
            SMut(z, "last", lastv),
            SMut(z, "next", n1),
            SMut(z, "prev", x),
            SMut(z, "rev_length", I(1)),
            SMut(z, "length", add(F(n1, "length"), I(1))),
            SMut(z, "keys", ite(eq(n1, x), singleton(k), union(singleton(k), F(n1, "keys")))),
            SMut(z, "hslist", ite(eq(n1, x), singleton(z), union(singleton(z), F(n1, "hslist")))),
            SMut(x, "next", z),
            SMut(n1, "prev", z),
            SMut(
                x,
                "hslist",
                union(F(x, "hslist"), singleton(z)),
                variant="add_last_hslist",
            ),
            SMut(x, "keys", F(z, "keys"), variant="scaffold_keys"),
            SAssertLCAndRemove(z),
            SAssertLCAndRemove(x),
            SAssign("r", z),
            SIf(
                eq(n1, x),
                [],
                [
                    # rev_length of n1, n2, ... shifted by one: forward repair
                    SAssign("cur", n1),
                    _forward_rev_loop(),
                    SAssertLCAndRemove(lastv),
                ],
            ),
        ],
    )


def proc_delete_front():
    """Remove the node right after the scaffolding x; the removed node is
    repaired into a valid empty scaffolding of its own."""
    return mkproc(
        "circ_delete_front",
        params=[("x", LOC)],
        outs=[("r", LOC)],
        requires=[
            EMPTY_BR,
            nonnil(x),
            LC(x),
            eq(F(x, "last"), x),
            ne(F(x, "next"), x),
        ],
        ensures=[
            EMPTY_BR,
            nonnil(r),
            eq(r, old(F(x, "next"))),
            LC(r),
            eq(F(r, "last"), r),
            not_(member(r, F(x, "hslist"))),
        ],
        modifies=singleton(x),
        locals={"n1": LOC, "n2": LOC, "lastv": LOC},
        ghost_locals={"cur": LOC},
        body=[
            SInferLCOutsideBr(x),
            SAssign("lastv", x),
            SAssign("n1", F(x, "next")),
            SInferLCOutsideBr(n1),
            SAssign("n2", F(n1, "next")),
            SInferLCOutsideBr(n2),
            SMut(x, "next", n2),
            SMut(n2, "prev", x),
            *_detach_to_singleton(n1),
            SMut(
                x,
                "hslist",
                diff(F(x, "hslist"), singleton(n1)),
                variant="remove_last_hslist",
                aux=n1,
            ),
            SMut(
                x,
                "keys",
                ite(eq(F(x, "next"), x), empty_int_set(), F(x, "next", "keys")),
                variant="scaffold_keys",
            ),
            SAssertLCAndRemove(n1),
            SAssertLCAndRemove(x),
            SIf(
                eq(n2, x),
                [],
                [
                    # rev_length of n2, ... shifted down: forward repair
                    SAssign("cur", n2),
                    _forward_rev_loop(),
                    SAssertLCAndRemove(lastv),
                ],
            ),
            SAssign("r", n1),
        ],
    )


def proc_delete_back():
    """Remove the node just before the scaffolding x."""
    return mkproc(
        "circ_delete_back",
        params=[("x", LOC)],
        outs=[("r", LOC)],
        requires=[
            EMPTY_BR,
            nonnil(x),
            LC(x),
            eq(F(x, "last"), x),
            ne(F(x, "next"), x),
        ],
        ensures=[
            EMPTY_BR,
            nonnil(r),
            eq(r, old(F(x, "prev"))),
            LC(r),
            eq(F(r, "last"), r),
            not_(member(r, F(x, "hslist"))),
        ],
        modifies=singleton(x),
        locals={"nk": LOC, "nk1": LOC, "lastv": LOC},
        ghost_locals={"cur": LOC, "z": LOC, "k": INT},
        body=[
            SInferLCOutsideBr(x),
            SAssign("lastv", x),
            SAssign("nk", F(x, "prev")),
            SInferLCOutsideBr(V("nk")),
            SAssign("nk1", F(V("nk"), "prev")),
            SInferLCOutsideBr(V("nk1")),
            SAssign("z", V("nk")),
            SAssign("k", F(V("nk"), "key")),
            SMut(V("nk1"), "next", x),
            SMut(x, "prev", V("nk1")),
            *_detach_to_singleton(V("nk")),
            SMut(
                x,
                "hslist",
                diff(F(x, "hslist"), singleton(V("nk"))),
                variant="remove_last_hslist",
                aux=V("nk"),
            ),
            SAssertLCAndRemove(V("nk")),
            SIf(
                eq(V("nk1"), x),
                [
                    SMut(x, "keys", empty_int_set(), variant="scaffold_keys"),
                    SAssertLCAndRemove(x),
                ],
                [
                    SMut(V("nk1"), "keys", singleton(F(V("nk1"), "key"))),
                    SMut(V("nk1"), "length", add(F(x, "length"), I(1))),
                    SMut(V("nk1"), "hslist", singleton(V("nk1"))),
                    SAssertLCAndRemove(V("nk1")),
                    SAssign("cur", F(V("nk1"), "prev")),
                    _backward_keys_loop(
                        protect=(V("nk1"),),
                        removed_key=V("k"),
                        removed_node=V("z"),
                    ),
                    SMut(x, "keys", F(x, "next", "keys"), variant="scaffold_keys"),
                    SAssertLCAndRemove(x),
                ],
            ),
            SAssign("r", V("nk")),
        ],
    )


def circular_program() -> Program:
    procs = [
        proc_insert_back(),
        proc_insert_front(),
        proc_delete_front(),
        proc_delete_back(),
    ]
    return Program(circular_signature(), {p.name: p for p in procs})


METHODS = ["circ_insert_front", "circ_insert_back", "circ_delete_front", "circ_delete_back"]


def build_circular(keys):
    """Concrete circular-list builder: scaffolding + nodes for ``keys``.
    Returns (heap, scaffolding)."""
    from ..lang.semantics import Heap

    heap = Heap(circular_signature())
    scaffold = heap.new_object()
    heap.write(scaffold, "key", 0)
    nodes = [heap.new_object() for _ in keys]
    ring = [scaffold] + nodes
    n = len(ring)
    for i, node in enumerate(ring):
        heap.write(node, "next", ring[(i + 1) % n])
        heap.write(node, "prev", ring[(i - 1) % n])
        heap.write(node, "last", scaffold)
    for node, kv in zip(nodes, keys):
        heap.write(node, "key", kv)
    heap.write(scaffold, "length", 0)
    heap.write(scaffold, "rev_length", 0)
    # real nodes accumulate up to (not including) the scaffolding
    for idx in range(len(nodes) - 1, -1, -1):
        node = nodes[idx]
        if idx == len(nodes) - 1:
            heap.write(node, "keys", frozenset([keys[idx]]))
            heap.write(node, "hslist", frozenset([node]))
        else:
            nxt = nodes[idx + 1]
            heap.write(node, "keys", heap.read(nxt, "keys") | {keys[idx]})
            heap.write(node, "hslist", heap.read(nxt, "hslist") | {node})
        heap.write(node, "length", len(nodes) - idx)
        heap.write(node, "rev_length", idx + 1)
    if nodes:
        heap.write(scaffold, "keys", frozenset(heap.read(nodes[0], "keys")))
        heap.write(scaffold, "hslist", frozenset(heap.read(nodes[0], "hslist") | {scaffold}))
    else:
        heap.write(scaffold, "keys", frozenset())
        heap.write(scaffold, "hslist", frozenset([scaffold]))
    return heap, scaffold
