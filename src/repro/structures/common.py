"""Shared helpers for the benchmark structure definitions."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..lang import exprs as E
from ..lang.ast import ClassSignature, Procedure
from ..lang.semantics import Heap, Obj
from ..smt.sorts import BOOL, INT, LOC, REAL, SET_INT, SET_LOC, Sort
from ..core.ids import LC_VAR

__all__ = [
    "X",
    "mkproc",
    "loc",
    "integer",
    "real",
    "boolean",
    "set_loc",
    "set_int",
    "nonnil",
    "isnil",
    "EMPTY_BR",
    "fresh_list_heap",
]

#: the LC template variable (the paper's universally-local "x")
X = LC_VAR

loc = LOC
integer = INT
real = REAL
boolean = BOOL
set_loc = SET_LOC
set_int = SET_INT


def nonnil(e: E.Expr) -> E.Expr:
    return E.ne(e, E.NIL_E)


def isnil(e: E.Expr) -> E.Expr:
    return E.eq(e, E.NIL_E)


EMPTY_BR = E.eq(E.BR, E.empty_loc_set())


def mkproc(
    name: str,
    params: List[Tuple[str, Sort]],
    outs: List[Tuple[str, Sort]],
    requires: List[E.Expr],
    ensures: List[E.Expr],
    body,
    modifies: Optional[E.Expr] = None,
    locals: Optional[Dict[str, Sort]] = None,
    ghost_locals: Optional[Dict[str, Sort]] = None,
    is_well_behaved: bool = True,
) -> Procedure:
    return Procedure(
        name=name,
        params=params,
        outs=outs,
        requires=requires,
        ensures=ensures,
        body=body,
        modifies=modifies,
        locals=locals or {},
        ghost_locals=ghost_locals or {},
        is_well_behaved=is_well_behaved,
    )


def fresh_list_heap(sig: ClassSignature, keys: List[int]) -> Tuple[Heap, Optional[Obj]]:
    """Build a concrete list heap with correct ghost maps (prev, length,
    keys, hslist) for the list-shaped structures.  Returns (heap, head)."""
    heap = Heap(sig)
    nodes = [heap.new_object() for _ in keys]
    n = len(nodes)
    for i, (node, k) in enumerate(zip(nodes, keys)):
        heap.write(node, "key", k)
        heap.write(node, "next", nodes[i + 1] if i + 1 < n else None)
        if "prev" in sig.ghosts:
            heap.write(node, "prev", nodes[i - 1] if i > 0 else None)
    # ghost measures, computed back-to-front
    for i in range(n - 1, -1, -1):
        node = nodes[i]
        if i + 1 < n:
            nxt = nodes[i + 1]
            if "length" in sig.ghosts:
                heap.write(node, "length", heap.read(nxt, "length") + 1)
            if "keys" in sig.ghosts:
                heap.write(node, "keys", heap.read(nxt, "keys") | {keys[i]})
            if "hslist" in sig.ghosts:
                heap.write(node, "hslist", heap.read(nxt, "hslist") | {node})
        else:
            if "length" in sig.ghosts:
                heap.write(node, "length", 1)
            if "keys" in sig.ghosts:
                heap.write(node, "keys", frozenset([keys[i]]))
            if "hslist" in sig.ghosts:
                heap.write(node, "hslist", frozenset([node]))
    return heap, (nodes[0] if nodes else None)
