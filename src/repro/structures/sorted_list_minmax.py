"""Sorted lists with min/max maps (Table 2 row "Sorted List (w. min, max
maps)": Concatenate and Find-Last).

``minv``/``maxv`` hold the smallest/largest key of the suffix starting at a
node, which makes O(1)-contract concatenation expressible: two sorted lists
may be concatenated when ``maxv`` of the first does not exceed ``minv`` of
the second.
"""

from __future__ import annotations

from ..core.ids import IntrinsicDefinition
from ..lang import exprs as E
from ..lang.ast import (
    ClassSignature,
    Program,
    SAssertLCAndRemove,
    SAssign,
    SCall,
    SIf,
    SInferLCOutsideBr,
    SMut,
)
from ..lang.exprs import (
    F,
    I,
    NIL_E,
    V,
    add,
    and_,
    empty_loc_set,
    eq,
    implies,
    ite,
    le,
    member,
    not_,
    old,
    singleton,
    subset,
    union,
)
from ..smt.sorts import INT, LOC, SET_INT, SET_LOC
from .common import EMPTY_BR, X, isnil, mkproc, nonnil

__all__ = ["sortedmm_ids", "sortedmm_program", "METHODS"]


def sortedmm_signature() -> ClassSignature:
    return ClassSignature(
        name="SortedListMinMax",
        fields={"next": LOC, "key": INT},
        ghosts={
            "prev": LOC,
            "length": INT,
            "keys": SET_INT,
            "hslist": SET_LOC,
            "minv": INT,
            "maxv": INT,
        },
    )


def sortedmm_lc() -> E.Expr:
    nxt = F(X, "next")
    return and_(
        E.all_ge(F(X, "keys"), F(X, "key")),
        E.all_le(F(X, "keys"), F(X, "maxv")),
        eq(F(X, "minv"), F(X, "key")),
        le(F(X, "minv"), F(X, "maxv")),
        member(F(X, "maxv"), F(X, "keys")),
        implies(
            nonnil(nxt),
            and_(
                le(F(X, "key"), F(X, "next", "key")),
                eq(F(X, "next", "prev"), X),
                eq(F(X, "length"), add(I(1), F(X, "next", "length"))),
                eq(F(X, "keys"), union(singleton(F(X, "key")), F(X, "next", "keys"))),
                eq(F(X, "hslist"), union(singleton(X), F(X, "next", "hslist"))),
                not_(member(X, F(X, "next", "hslist"))),
                eq(F(X, "maxv"), F(X, "next", "maxv")),
            ),
        ),
        implies(nonnil(F(X, "prev")), eq(F(X, "prev", "next"), X)),
        implies(
            isnil(nxt),
            and_(
                eq(F(X, "length"), I(1)),
                eq(F(X, "keys"), singleton(F(X, "key"))),
                eq(F(X, "hslist"), singleton(X)),
                eq(F(X, "maxv"), F(X, "key")),
            ),
        ),
    )


def sortedmm_ids() -> IntrinsicDefinition:
    return IntrinsicDefinition(
        name="Sorted List (w. min, max maps)",
        sig=sortedmm_signature(),
        lc_parts={"Br": sortedmm_lc()},
        correlation=isnil(F(X, "prev")),
        impact={
            "next": [X, E.old(F(X, "next"))],
            "key": [X, F(X, "prev")],
            "prev": [X, E.old(F(X, "prev"))],
            "length": [X, F(X, "prev")],
            "keys": [X, F(X, "prev")],
            "hslist": [X, F(X, "prev")],
            "minv": [X, F(X, "prev")],
            "maxv": [X, F(X, "prev")],
        },
    )


_ids = sortedmm_ids()
LC = lambda obj: _ids.lc_at(obj)  # noqa: E731

x, y, z, k, r, tmp = V("x"), V("y"), V("z"), V("k"), V("r"), V("tmp")


def proc_concatenate():
    """Concatenate sorted lists x ++ y when max(x) <= min(y) (recursive)."""
    return mkproc(
        "sortedmm_concatenate",
        params=[("x", LOC), ("y", LOC)],
        outs=[("r", LOC)],
        requires=[
            EMPTY_BR,
            nonnil(x),
            LC(x),
            implies(
                nonnil(y),
                and_(
                    LC(y),
                    le(F(x, "maxv"), F(y, "minv")),
                    eq(E.inter(F(x, "hslist"), F(y, "hslist")), empty_loc_set()),
                ),
            ),
        ],
        ensures=[
            eq(
                E.BR,
                ite(
                    isnil(old(F(x, "prev"))),
                    empty_loc_set(),
                    singleton(old(F(x, "prev"))),
                ),
            ),
            eq(r, E.old(x)),
            LC(r),
            isnil(F(r, "prev")),
            eq(
                F(r, "keys"),
                ite(
                    isnil(E.old(y)),
                    old(F(x, "keys")),
                    union(old(F(x, "keys")), old(F(y, "keys"))),
                ),
            ),
            subset(
                F(r, "hslist"),
                ite(
                    isnil(E.old(y)),
                    old(F(x, "hslist")),
                    union(old(F(x, "hslist")), old(F(y, "hslist"))),
                ),
            ),
        ],
        modifies=ite(isnil(y), F(x, "hslist"), union(F(x, "hslist"), F(y, "hslist"))),
        locals={"z": LOC, "tmp": LOC},
        body=[
            SInferLCOutsideBr(x),
            SIf(
                isnil(y),
                [
                    SMut(x, "prev", NIL_E),
                    SAssertLCAndRemove(x),
                    SAssign("r", x),
                ],
                [
                    SInferLCOutsideBr(y),
                    SIf(
                        isnil(F(x, "next")),
                        [
                            SMut(x, "next", y),
                            SMut(y, "prev", x),
                            SAssertLCAndRemove(y),
                            SMut(x, "prev", NIL_E),
                            SMut(x, "length", add(I(1), F(y, "length"))),
                            SMut(x, "keys", union(singleton(F(x, "key")), F(y, "keys"))),
                            SMut(x, "hslist", union(singleton(x), F(y, "hslist"))),
                            SMut(x, "maxv", F(y, "maxv")),
                            SAssertLCAndRemove(x),
                            SAssign("r", x),
                        ],
                        [
                            SAssign("z", F(x, "next")),
                            SInferLCOutsideBr(z),
                            SCall(("tmp",), "sortedmm_concatenate", (z, y)),
                            SInferLCOutsideBr(z),
                            SIf(eq(F(z, "prev"), x), [SMut(z, "prev", NIL_E)], []),
                            SMut(x, "next", tmp),
                            SAssertLCAndRemove(z),
                            SMut(tmp, "prev", x),
                            SAssertLCAndRemove(tmp),
                            SMut(x, "prev", NIL_E),
                            SMut(x, "length", add(I(1), F(tmp, "length"))),
                            SMut(x, "keys", union(singleton(F(x, "key")), F(tmp, "keys"))),
                            SMut(x, "hslist", union(singleton(x), F(tmp, "hslist"))),
                            SMut(x, "maxv", F(tmp, "maxv")),
                            SAssertLCAndRemove(x),
                            SAssign("r", x),
                        ],
                    ),
                ],
            ),
        ],
    )


def proc_find_last():
    """Return the largest key, using maxv for the O(1) contract; the body
    still walks the list (recursively), proving maxv is truthful."""
    return mkproc(
        "sortedmm_find_last",
        params=[("x", LOC)],
        outs=[("k", INT)],
        requires=[EMPTY_BR, nonnil(x), LC(x)],
        ensures=[
            EMPTY_BR,
            eq(k, old(F(x, "maxv"))),
            member(k, old(F(x, "keys"))),
        ],
        modifies=empty_loc_set(),
        body=[
            SInferLCOutsideBr(x),
            SIf(
                isnil(F(x, "next")),
                [SAssign("k", F(x, "key"))],
                [
                    SInferLCOutsideBr(F(x, "next")),
                    SCall(("k",), "sortedmm_find_last", (F(x, "next"),)),
                ],
            ),
        ],
    )


def sortedmm_program() -> Program:
    procs = [proc_concatenate(), proc_find_last()]
    return Program(sortedmm_signature(), {p.name: p for p in procs})


METHODS = ["sortedmm_concatenate", "sortedmm_find_last"]
