"""Singly-linked lists: the first Table 2 structure (8 methods).

Intrinsic definition (Section 4.1 shape, without sortedness): ghost monadic
maps ``prev`` (inverse pointer -- rules out merging), ``length`` (strictly
decreasing along ``next`` -- rules out cycles), ``keys`` (multiset-as-set of
stored keys) and ``hslist`` (the heaplet).  The correlation formula
``phi(y) = (prev(y) = nil)`` characterizes list heads.
"""

from __future__ import annotations

from ..core.ids import IntrinsicDefinition
from ..lang import exprs as E
from ..lang.ast import (
    ClassSignature,
    Program,
    SAssertLCAndRemove,
    SAssign,
    SCall,
    SIf,
    SInferLCOutsideBr,
    SMut,
    SNewObj,
    SWhile,
)
from ..lang.exprs import (
    B,
    F,
    I,
    NIL_E,
    V,
    add,
    and_,
    diff,
    empty_loc_set,
    eq,
    implies,
    ite,
    member,
    ne,
    not_,
    old,
    or_,
    singleton,
    subset,
    union,
)
from ..smt.sorts import BOOL, INT, LOC, SET_INT, SET_LOC
from .common import EMPTY_BR, X, isnil, mkproc, nonnil

__all__ = ["sll_ids", "sll_program", "METHODS"]


def sll_signature() -> ClassSignature:
    return ClassSignature(
        name="SLL",
        fields={"next": LOC, "key": INT},
        ghosts={"prev": LOC, "length": INT, "keys": SET_INT, "hslist": SET_LOC},
    )


def sll_lc() -> E.Expr:
    nxt = F(X, "next")
    return and_(
        implies(
            nonnil(nxt),
            and_(
                eq(F(X, "next", "prev"), X),
                eq(F(X, "length"), add(I(1), F(X, "next", "length"))),
                eq(F(X, "keys"), union(singleton(F(X, "key")), F(X, "next", "keys"))),
                eq(F(X, "hslist"), union(singleton(X), F(X, "next", "hslist"))),
                not_(member(X, F(X, "next", "hslist"))),
            ),
        ),
        implies(nonnil(F(X, "prev")), eq(F(X, "prev", "next"), X)),
        implies(
            isnil(nxt),
            and_(
                eq(F(X, "length"), I(1)),
                eq(F(X, "keys"), singleton(F(X, "key"))),
                eq(F(X, "hslist"), singleton(X)),
            ),
        ),
    )


def sll_ids() -> IntrinsicDefinition:
    return IntrinsicDefinition(
        name="Singly-Linked List",
        sig=sll_signature(),
        lc_parts={"Br": sll_lc()},
        correlation=isnil(F(X, "prev")),
        impact={
            "next": [X, E.old(F(X, "next"))],
            "key": [X, F(X, "prev")],
            "prev": [X, E.old(F(X, "prev"))],
            "length": [X, F(X, "prev")],
            "keys": [X, F(X, "prev")],
            "hslist": [X, F(X, "prev")],
        },
    )


# ---------------------------------------------------------------------------
# Methods
# ---------------------------------------------------------------------------

_ids = sll_ids()
LC = lambda obj: _ids.lc_at(obj)  # noqa: E731

x, y, z, z2, k, r, tmp, cur, ret, b = (
    V("x"),
    V("y"),
    V("z"),
    V("z2"),
    V("k"),
    V("r"),
    V("tmp"),
    V("cur"),
    V("ret"),
    V("b"),
)


def proc_insert_front():
    """Insert k as the new head of the list x (x may be nil: empty list)."""
    return mkproc(
        "sll_insert_front",
        params=[("x", LOC), ("k", INT)],
        outs=[("r", LOC)],
        requires=[
            EMPTY_BR,
            implies(nonnil(x), and_(LC(x), isnil(F(x, "prev")))),
        ],
        ensures=[
            EMPTY_BR,
            nonnil(r),
            LC(r),
            isnil(F(r, "prev")),
            eq(F(r, "next"), E.old(x)),
            eq(F(r, "key"), E.old(k)),
            eq(
                F(r, "keys"),
                ite(
                    isnil(E.old(x)),
                    singleton(k),
                    union(singleton(k), old(F(x, "keys"))),
                ),
            ),
            eq(
                F(r, "length"),
                ite(isnil(E.old(x)), I(1), add(I(1), old(F(x, "length")))),
            ),
        ],
        modifies=ite(isnil(x), empty_loc_set(), singleton(x)),
        locals={"z": LOC},
        body=[
            SNewObj("z"),
            SMut(z, "key", k),
            SMut(z, "next", x),
            SIf(
                ne(x, NIL_E),
                [
                    SInferLCOutsideBr(x),
                    SMut(x, "prev", z),
                    SMut(z, "length", add(I(1), F(x, "length"))),
                    SMut(z, "keys", union(singleton(k), F(x, "keys"))),
                    SMut(z, "hslist", union(singleton(z), F(x, "hslist"))),
                    SAssertLCAndRemove(x),
                    SAssertLCAndRemove(z),
                ],
                [
                    SMut(z, "length", I(1)),
                    SMut(z, "keys", singleton(k)),
                    SMut(z, "hslist", singleton(z)),
                    SAssertLCAndRemove(z),
                ],
            ),
            SAssign("r", z),
        ],
    )


def proc_find():
    """Does the list starting at x contain k?  (Recursive search.)"""
    return mkproc(
        "sll_find",
        params=[("x", LOC), ("k", INT)],
        outs=[("b", BOOL)],
        requires=[EMPTY_BR, nonnil(x), LC(x)],
        ensures=[EMPTY_BR, E.iff(b, member(k, old(F(x, "keys"))))],
        modifies=empty_loc_set(),
        body=[
            SInferLCOutsideBr(x),
            SIf(
                eq(F(x, "key"), k),
                [SAssign("b", B(True))],
                [
                    SIf(
                        isnil(F(x, "next")),
                        [SAssign("b", B(False))],
                        [
                            SInferLCOutsideBr(F(x, "next")),
                            SCall(("b",), "sll_find", (F(x, "next"), k)),
                        ],
                    )
                ],
            ),
        ],
    )


def proc_insert_back():
    """Insert k at the back of the (non-empty) list x."""
    return mkproc(
        "sll_insert_back",
        params=[("x", LOC), ("k", INT)],
        outs=[("r", LOC)],
        requires=[EMPTY_BR, nonnil(x), LC(x)],
        ensures=[
            eq(E.BR, ite(isnil(old(F(x, "prev"))), empty_loc_set(), singleton(old(F(x, "prev"))))),
            eq(r, E.old(x)),
            LC(r),
            isnil(F(r, "prev")),
            eq(F(r, "keys"), union(old(F(x, "keys")), singleton(k))),
            eq(F(r, "length"), add(old(F(x, "length")), I(1))),
            subset(old(F(x, "hslist")), F(r, "hslist")),
            subset(
                F(r, "hslist"),
                union(old(F(x, "hslist")), diff(E.ALLOC, old(E.ALLOC))),
            ),
        ],
        modifies=F(x, "hslist"),
        locals={"z": LOC, "tmp": LOC},
        body=[
            SInferLCOutsideBr(x),
            SIf(
                isnil(F(x, "next")),
                [
                    SNewObj("z"),
                    SMut(z, "key", k),
                    SMut(z, "length", I(1)),
                    SMut(z, "keys", singleton(k)),
                    SMut(z, "hslist", singleton(z)),
                    SMut(x, "next", z),
                    SMut(z, "prev", x),
                    SAssertLCAndRemove(z),
                    SMut(x, "prev", NIL_E),
                    SMut(x, "length", I(2)),
                    SMut(x, "keys", union(singleton(F(x, "key")), singleton(k))),
                    SMut(x, "hslist", union(singleton(x), singleton(z))),
                    SAssertLCAndRemove(x),
                    SAssign("r", x),
                ],
                [
                    SInferLCOutsideBr(F(x, "next")),
                    SCall(("tmp",), "sll_insert_back", (F(x, "next"), k)),
                    SMut(x, "next", tmp),
                    SMut(tmp, "prev", x),
                    SAssertLCAndRemove(tmp),
                    SMut(x, "prev", NIL_E),
                    SMut(x, "length", add(I(1), F(tmp, "length"))),
                    SMut(x, "keys", union(singleton(F(x, "key")), F(tmp, "keys"))),
                    SMut(x, "hslist", union(singleton(x), F(tmp, "hslist"))),
                    SAssertLCAndRemove(x),
                    SAssign("r", x),
                ],
            ),
        ],
    )


def proc_insert():
    """Insert k after the head of the (non-empty) list x (unsorted insert)."""
    return mkproc(
        "sll_insert",
        params=[("x", LOC), ("k", INT)],
        outs=[("r", LOC)],
        requires=[EMPTY_BR, nonnil(x), LC(x), isnil(F(x, "prev"))],
        ensures=[
            EMPTY_BR,
            eq(r, E.old(x)),
            LC(r),
            isnil(F(r, "prev")),
            eq(F(r, "keys"), union(old(F(x, "keys")), singleton(k))),
            eq(F(r, "length"), add(old(F(x, "length")), I(1))),
        ],
        modifies=F(x, "hslist"),
        locals={"y": LOC, "z": LOC},
        body=[
            SInferLCOutsideBr(x),
            SAssign("y", F(x, "next")),
            SInferLCOutsideBr(y),
            SNewObj("z"),
            SMut(z, "key", k),
            SMut(z, "next", y),
            SMut(x, "next", z),
            SMut(z, "prev", x),
            SIf(
                ne(y, NIL_E),
                [
                    SMut(y, "prev", z),
                    SMut(z, "length", add(I(1), F(y, "length"))),
                    SMut(z, "keys", union(singleton(k), F(y, "keys"))),
                    SMut(z, "hslist", union(singleton(z), F(y, "hslist"))),
                    SAssertLCAndRemove(y),
                ],
                [
                    SMut(z, "length", I(1)),
                    SMut(z, "keys", singleton(k)),
                    SMut(z, "hslist", singleton(z)),
                ],
            ),
            SAssertLCAndRemove(z),
            SMut(x, "length", add(I(1), F(z, "length"))),
            SMut(x, "keys", union(singleton(F(x, "key")), F(z, "keys"))),
            SMut(x, "hslist", union(singleton(x), F(z, "hslist"))),
            SAssertLCAndRemove(x),
            SAssign("r", x),
        ],
    )


def proc_append():
    """Append list y to the end of list x (disjoint heaplets required)."""
    return mkproc(
        "sll_append",
        params=[("x", LOC), ("y", LOC)],
        outs=[("r", LOC)],
        requires=[
            EMPTY_BR,
            nonnil(x),
            LC(x),
            implies(
                nonnil(y),
                and_(
                    LC(y),
                    isnil(F(y, "prev")),
                    eq(E.inter(F(x, "hslist"), F(y, "hslist")), empty_loc_set()),
                    not_(member(x, F(y, "hslist"))),
                ),
            ),
        ],
        ensures=[
            eq(E.BR, ite(isnil(old(F(x, "prev"))), empty_loc_set(), singleton(old(F(x, "prev"))))),
            eq(r, E.old(x)),
            LC(r),
            isnil(F(r, "prev")),
            eq(
                F(r, "keys"),
                ite(
                    isnil(E.old(y)),
                    old(F(x, "keys")),
                    union(old(F(x, "keys")), old(F(y, "keys"))),
                ),
            ),
            subset(
                F(r, "hslist"),
                ite(
                    isnil(E.old(y)),
                    old(F(x, "hslist")),
                    union(old(F(x, "hslist")), old(F(y, "hslist"))),
                ),
            ),
        ],
        modifies=ite(
            isnil(y), F(x, "hslist"), union(F(x, "hslist"), F(y, "hslist"))
        ),
        locals={"tmp": LOC, "z2": LOC},
        body=[
            SInferLCOutsideBr(x),
            SIf(
                isnil(y),
                [
                    SMut(x, "prev", NIL_E),
                    SAssertLCAndRemove(x),
                    SAssign("r", x),
                ],
                [
                    SInferLCOutsideBr(y),
                    SIf(
                        isnil(F(x, "next")),
                        [
                            SMut(x, "next", y),
                            SMut(y, "prev", x),
                            SAssertLCAndRemove(y),
                            SMut(x, "prev", NIL_E),
                            SMut(x, "length", add(I(1), F(y, "length"))),
                            SMut(x, "keys", union(singleton(F(x, "key")), F(y, "keys"))),
                            SMut(x, "hslist", union(singleton(x), F(y, "hslist"))),
                            SAssertLCAndRemove(x),
                            SAssign("r", x),
                        ],
                        [
                            SAssign("z2", F(x, "next")),
                            SInferLCOutsideBr(z2),
                            SCall(("tmp",), "sll_append", (z2, y)),
                            SInferLCOutsideBr(z2),
                            SMut(x, "next", tmp),
                            SAssertLCAndRemove(z2),
                            SMut(tmp, "prev", x),
                            SAssertLCAndRemove(tmp),
                            SMut(x, "prev", NIL_E),
                            SMut(x, "length", add(I(1), F(tmp, "length"))),
                            SMut(x, "keys", union(singleton(F(x, "key")), F(tmp, "keys"))),
                            SMut(x, "hslist", union(singleton(x), F(tmp, "hslist"))),
                            SAssertLCAndRemove(x),
                            SAssign("r", x),
                        ],
                    ),
                ],
            ),
        ],
    )


def proc_copy_all():
    """Structurally copy the list x into fresh nodes."""
    return mkproc(
        "sll_copy_all",
        params=[("x", LOC)],
        outs=[("r", LOC)],
        requires=[EMPTY_BR, nonnil(x), LC(x)],
        ensures=[
            EMPTY_BR,
            nonnil(r),
            LC(r),
            isnil(F(r, "prev")),
            eq(F(r, "keys"), old(F(x, "keys"))),
            eq(F(r, "length"), old(F(x, "length"))),
            subset(F(r, "hslist"), diff(E.ALLOC, old(E.ALLOC))),
            eq(E.inter(F(r, "hslist"), old(F(x, "hslist"))), empty_loc_set()),
        ],
        modifies=empty_loc_set(),
        locals={"z": LOC, "tmp": LOC},
        body=[
            SInferLCOutsideBr(x),
            SIf(
                isnil(F(x, "next")),
                [
                    SNewObj("z"),
                    SMut(z, "key", F(x, "key")),
                    SMut(z, "length", I(1)),
                    SMut(z, "keys", singleton(F(x, "key"))),
                    SMut(z, "hslist", singleton(z)),
                    SAssertLCAndRemove(z),
                ],
                [
                    SInferLCOutsideBr(F(x, "next")),
                    SCall(("tmp",), "sll_copy_all", (F(x, "next"),)),
                    SInferLCOutsideBr(tmp),
                    SNewObj("z"),
                    SMut(z, "key", F(x, "key")),
                    SMut(z, "next", tmp),
                    SMut(tmp, "prev", z),
                    SAssertLCAndRemove(tmp),
                    SMut(z, "length", add(I(1), F(tmp, "length"))),
                    SMut(z, "keys", union(singleton(F(x, "key")), F(tmp, "keys"))),
                    SMut(z, "hslist", union(singleton(z), F(tmp, "hslist"))),
                    SAssertLCAndRemove(z),
                ],
            ),
            SAssign("r", z),
        ],
    )


def proc_delete_all():
    """Delete every occurrence of k from the list x.

    Deleted nodes are *repaired into valid singleton lists* -- the FWYB
    discipline demands every node satisfy LC at exit, linked or not.  The
    head x always ends with ``prev = nil`` (it is either the returned head
    or a detached singleton), which is what lets the caller re-establish
    its own LC after the recursive call.
    """
    fix_singleton = [
        SMut(x, "prev", NIL_E),
        SMut(x, "length", I(1)),
        SMut(x, "keys", singleton(F(x, "key"))),
        SMut(x, "hslist", singleton(x)),
    ]
    return mkproc(
        "sll_delete_all",
        params=[("x", LOC), ("k", INT)],
        outs=[("r", LOC)],
        requires=[EMPTY_BR, nonnil(x), LC(x)],
        ensures=[
            eq(
                E.BR,
                ite(
                    isnil(old(F(x, "prev"))),
                    empty_loc_set(),
                    singleton(old(F(x, "prev"))),
                ),
            ),
            isnil(F(x, "prev")),
            implies(
                nonnil(r),
                and_(
                    LC(r),
                    isnil(F(r, "prev")),
                    eq(F(r, "keys"), diff(old(F(x, "keys")), singleton(k))),
                    subset(F(r, "hslist"), old(F(x, "hslist"))),
                ),
            ),
            implies(isnil(r), subset(old(F(x, "keys")), singleton(k))),
        ],
        modifies=F(x, "hslist"),
        locals={"y": LOC, "tmp": LOC},
        body=[
            SInferLCOutsideBr(x),
            SIf(
                isnil(F(x, "next")),
                [
                    *fix_singleton,
                    SAssertLCAndRemove(x),
                    SIf(
                        eq(F(x, "key"), k),
                        [SAssign("r", NIL_E)],
                        [SAssign("r", x)],
                    ),
                ],
                [
                    SAssign("y", F(x, "next")),
                    SInferLCOutsideBr(y),
                    SCall(("tmp",), "sll_delete_all", (y, k)),
                    SInferLCOutsideBr(y),
                    SIf(
                        eq(F(x, "key"), k),
                        [
                            SMut(x, "next", NIL_E),
                            SAssertLCAndRemove(y),
                            *fix_singleton,
                            SAssertLCAndRemove(x),
                            SAssign("r", tmp),
                        ],
                        [
                            SIf(
                                isnil(tmp),
                                [
                                    SMut(x, "next", NIL_E),
                                    SAssertLCAndRemove(y),
                                    *fix_singleton,
                                    SAssertLCAndRemove(x),
                                ],
                                [
                                    SInferLCOutsideBr(tmp),
                                    SMut(x, "next", tmp),
                                    SAssertLCAndRemove(y),
                                    SMut(tmp, "prev", x),
                                    SAssertLCAndRemove(tmp),
                                    SMut(x, "prev", NIL_E),
                                    SMut(x, "length", add(I(1), F(tmp, "length"))),
                                    SMut(x, "keys", union(singleton(F(x, "key")), F(tmp, "keys"))),
                                    SMut(x, "hslist", union(singleton(x), F(tmp, "hslist"))),
                                    SAssertLCAndRemove(x),
                                ],
                            ),
                            SAssign("r", x),
                        ],
                    ),
                ],
            ),
        ],
    )


def proc_reverse():
    """In-place reversal with a loop (the Section 4.2 iteration pattern)."""
    inv_cur = implies(
        nonnil(cur), and_(LC(cur), isnil(F(cur, "prev")))
    )
    inv_ret = implies(
        nonnil(ret), and_(LC(ret), isnil(F(ret, "prev")))
    )
    inv_disjoint = implies(
        and_(nonnil(cur), nonnil(ret)),
        eq(E.inter(F(cur, "hslist"), F(ret, "hslist")), empty_loc_set()),
    )
    inv_keys = eq(
        old(F(x, "keys")),
        E.ite(
            isnil(cur),
            E.ite(isnil(ret), E.empty_int_set(), F(ret, "keys")),
            E.ite(
                isnil(ret),
                F(cur, "keys"),
                union(F(cur, "keys"), F(ret, "keys")),
            ),
        ),
    )
    inv_hslist = eq(
        old(F(x, "hslist")),
        E.ite(
            isnil(cur),
            E.ite(isnil(ret), empty_loc_set(), F(ret, "hslist")),
            E.ite(
                isnil(ret),
                F(cur, "hslist"),
                union(F(cur, "hslist"), F(ret, "hslist")),
            ),
        ),
    )
    return mkproc(
        "sll_reverse",
        params=[("x", LOC)],
        outs=[("ret", LOC)],
        requires=[EMPTY_BR, nonnil(x), LC(x), isnil(F(x, "prev"))],
        ensures=[
            EMPTY_BR,
            nonnil(ret),
            LC(ret),
            isnil(F(ret, "prev")),
            eq(F(ret, "keys"), old(F(x, "keys"))),
        ],
        modifies=F(x, "hslist"),
        locals={"cur": LOC, "tmp": LOC},
        body=[
            SAssign("cur", x),
            SAssign("ret", NIL_E),
            SWhile(
                ne(cur, NIL_E),
                invariants=[
                    EMPTY_BR,
                    or_(nonnil(cur), nonnil(ret)),
                    inv_cur,
                    inv_ret,
                    inv_disjoint,
                    inv_keys,
                    inv_hslist,
                ],
                body=[
                    SInferLCOutsideBr(cur),
                    SAssign("tmp", F(cur, "next")),
                    SIf(
                        ne(tmp, NIL_E),
                        [
                            SInferLCOutsideBr(tmp),
                            SMut(tmp, "prev", NIL_E),
                        ],
                        [],
                    ),
                    SMut(cur, "next", ret),
                    SIf(
                        ne(ret, NIL_E),
                        [SMut(ret, "prev", cur)],
                        [],
                    ),
                    SIf(
                        ne(ret, NIL_E),
                        [
                            SMut(cur, "length", add(I(1), F(ret, "length"))),
                            SMut(cur, "keys", union(singleton(F(cur, "key")), F(ret, "keys"))),
                            SMut(cur, "hslist", union(singleton(cur), F(ret, "hslist"))),
                        ],
                        [
                            SMut(cur, "length", I(1)),
                            SMut(cur, "keys", singleton(F(cur, "key"))),
                            SMut(cur, "hslist", singleton(cur)),
                        ],
                    ),
                    SMut(cur, "prev", NIL_E),
                    SAssertLCAndRemove(ret),
                    SAssertLCAndRemove(cur),
                    SAssertLCAndRemove(tmp),
                    SAssign("ret", cur),
                    SAssign("cur", tmp),
                ],
            ),
        ],
    )


def sll_program() -> Program:
    procs = [
        proc_insert_front(),
        proc_find(),
        proc_insert_back(),
        proc_insert(),
        proc_append(),
        proc_copy_all(),
        proc_delete_all(),
        proc_reverse(),
    ]
    return Program(sll_signature(), {p.name: p for p in procs})


METHODS = [
    "sll_append",
    "sll_copy_all",
    "sll_delete_all",
    "sll_find",
    "sll_insert_back",
    "sll_insert_front",
    "sll_insert",
    "sll_reverse",
]
