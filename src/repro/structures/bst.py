"""Binary search trees (Appendix D.2 definition, Table 2 methods).

Ghost monadic maps: ``p`` (parent -- rules out merging), ``rank`` (strictly
decreasing towards children -- rules out cycles), ``min``/``max`` (subtree
key range, making the search-tree property local), ``keys`` and ``hs``
(subtree key set and heaplet, for full functional contracts).

Beyond Appendix D.2 we also keep two kinds of locally-checkable redundancy
that make the *complete* functional specifications provable:

- ``min(x)``/``max(x)`` are members of ``keys(x)``;
- child key sets are bounded: ``all_le(keys(l(x)), key(x)-1)`` and
  ``all_ge(keys(r(x)), key(x)+1)`` (the pointwise-comparison gadget of the
  generalized array theory, cf. Section 5.1).
"""

from __future__ import annotations

from ..core.ids import IntrinsicDefinition
from ..lang import exprs as E
from ..lang.ast import (
    ClassSignature,
    Program,
    SAssertLCAndRemove,
    SAssign,
    SCall,
    SIf,
    SInferLCOutsideBr,
    SMut,
    SNewObj,
)
from ..lang.exprs import (
    B,
    F,
    I,
    NIL_E,
    V,
    add,
    all_ge,
    all_le,
    and_,
    diff,
    empty_int_set,
    empty_loc_set,
    eq,
    ge,
    gt,
    iff,
    implies,
    ite,
    le,
    lt,
    member,
    ne,
    not_,
    old,
    or_,
    singleton,
    sub,
    subset,
    union,
)
from ..smt.sorts import BOOL, INT, LOC, REAL, SET_INT, SET_LOC
from .common import EMPTY_BR, X, isnil, mkproc, nonnil

__all__ = ["bst_ids", "bst_program", "bst_lc", "bst_signature", "BST_IMPACT", "METHODS"]


def bst_signature(extra_ghosts=None) -> ClassSignature:
    ghosts = {
        "p": LOC,
        "rank": REAL,
        "min": INT,
        "max": INT,
        "keys": SET_INT,
        "hs": SET_LOC,
    }
    if extra_ghosts:
        ghosts.update(extra_ghosts)
    return ClassSignature(
        name="BST",
        fields={"l": LOC, "r": LOC, "key": INT},
        ghosts=ghosts,
    )


def bst_lc() -> E.Expr:
    """The local condition for plain binary search trees."""
    l, r, key = F(X, "l"), F(X, "r"), F(X, "key")
    return and_(
        le(F(X, "min"), key),
        le(key, F(X, "max")),
        member(F(X, "min"), F(X, "keys")),
        member(F(X, "max"), F(X, "keys")),
        implies(
            nonnil(F(X, "p")),
            or_(eq(F(X, "p", "l"), X), eq(F(X, "p", "r"), X)),
        ),
        implies(
            nonnil(l),
            and_(
                eq(F(X, "l", "p"), X),
                lt(F(X, "l", "rank"), F(X, "rank")),
                lt(F(X, "l", "max"), key),
                eq(F(X, "min"), F(X, "l", "min")),
                not_(member(X, F(X, "l", "hs"))),
                all_le(F(X, "l", "keys"), sub(key, I(1))),
            ),
        ),
        implies(isnil(l), eq(F(X, "min"), key)),
        implies(
            nonnil(r),
            and_(
                eq(F(X, "r", "p"), X),
                lt(F(X, "r", "rank"), F(X, "rank")),
                lt(key, F(X, "r", "min")),
                eq(F(X, "max"), F(X, "r", "max")),
                not_(member(X, F(X, "r", "hs"))),
                all_ge(F(X, "r", "keys"), add(key, I(1))),
            ),
        ),
        implies(isnil(r), eq(F(X, "max"), key)),
        implies(
            and_(nonnil(l), nonnil(r)),
            and_(ne(l, r), eq(E.inter(F(X, "l", "hs"), F(X, "r", "hs")), empty_loc_set())),
        ),
        eq(
            F(X, "keys"),
            union(
                singleton(key),
                ite(nonnil(l), F(X, "l", "keys"), empty_int_set()),
                ite(nonnil(r), F(X, "r", "keys"), empty_int_set()),
            ),
        ),
        eq(
            F(X, "hs"),
            union(
                singleton(X),
                ite(nonnil(l), F(X, "l", "hs"), empty_loc_set()),
                ite(nonnil(r), F(X, "r", "hs"), empty_loc_set()),
            ),
        ),
    )


BST_IMPACT = {
    "l": [X, E.old(F(X, "l"))],
    "r": [X, E.old(F(X, "r"))],
    "p": [X, E.old(F(X, "p"))],
    "key": [X, F(X, "p")],
    "rank": [X, F(X, "p")],
    "min": [X, F(X, "p")],
    "max": [X, F(X, "p")],
    "keys": [X, F(X, "p")],
    "hs": [X, F(X, "p")],
}


def bst_ids() -> IntrinsicDefinition:
    return IntrinsicDefinition(
        name="Binary Search Tree",
        sig=bst_signature(),
        lc_parts={"Br": bst_lc()},
        correlation=isnil(F(X, "p")),
        impact=dict(BST_IMPACT),
        steering_ghosts=frozenset({"p"}),
    )


# ---------------------------------------------------------------------------
# Methods
# ---------------------------------------------------------------------------

_ids = bst_ids()
LC = lambda obj: _ids.lc_at(obj)  # noqa: E731

x, y, z, k, r, m, tmp, rest, b = (
    V("x"),
    V("y"),
    V("z"),
    V("k"),
    V("r"),
    V("m"),
    V("tmp"),
    V("rest"),
    V("b"),
)


def _fix_singleton(node):
    """Repair a detached node into a valid one-element tree."""
    return [
        SMut(node, "p", NIL_E),
        SMut(node, "min", F(node, "key")),
        SMut(node, "max", F(node, "key")),
        SMut(node, "keys", singleton(F(node, "key"))),
        SMut(node, "hs", singleton(node)),
    ]


def _refresh_measures(node):
    """Recompute min/max/keys/hs of ``node`` from its (current) children,
    exactly following the shape of the local condition."""
    l, r_ = F(node, "l"), F(node, "r")
    return [
        SMut(node, "min", ite(nonnil(l), F(node, "l", "min"), F(node, "key"))),
        SMut(node, "max", ite(nonnil(r_), F(node, "r", "max"), F(node, "key"))),
        SMut(
            node,
            "keys",
            union(
                singleton(F(node, "key")),
                ite(nonnil(l), F(node, "l", "keys"), empty_int_set()),
                ite(nonnil(r_), F(node, "r", "keys"), empty_int_set()),
            ),
        ),
        SMut(
            node,
            "hs",
            union(
                singleton(node),
                ite(nonnil(l), F(node, "l", "hs"), empty_loc_set()),
                ite(nonnil(r_), F(node, "r", "hs"), empty_loc_set()),
            ),
        ),
    ]


BR_SUBSET_OLD_PARENT = subset(
    E.BR,
    ite(isnil(old(F(x, "p"))), empty_loc_set(), singleton(old(F(x, "p")))),
)


def proc_bst_find():
    return mkproc(
        "bst_find",
        params=[("x", LOC), ("k", INT)],
        outs=[("b", BOOL)],
        requires=[EMPTY_BR, nonnil(x), LC(x)],
        ensures=[EMPTY_BR, iff(b, member(k, old(F(x, "keys"))))],
        modifies=empty_loc_set(),
        body=[
            SInferLCOutsideBr(x),
            SIf(
                eq(F(x, "key"), k),
                [SAssign("b", B(True))],
                [
                    SIf(
                        lt(k, F(x, "key")),
                        [
                            SIf(
                                isnil(F(x, "l")),
                                [SAssign("b", B(False))],
                                [
                                    SInferLCOutsideBr(F(x, "l")),
                                    SCall(("b",), "bst_find", (F(x, "l"), k)),
                                ],
                            ),
                        ],
                        [
                            SIf(
                                isnil(F(x, "r")),
                                [SAssign("b", B(False))],
                                [
                                    SInferLCOutsideBr(F(x, "r")),
                                    SCall(("b",), "bst_find", (F(x, "r"), k)),
                                ],
                            ),
                        ],
                    ),
                ],
            ),
        ],
    )


def proc_bst_insert():
    """Insert k into the subtree rooted at x (no-op on duplicates)."""
    fresh = diff(E.ALLOC, old(E.ALLOC))
    return mkproc(
        "bst_insert",
        params=[("x", LOC), ("k", INT)],
        outs=[("r", LOC)],
        requires=[EMPTY_BR, nonnil(x), LC(x)],
        ensures=[
            BR_SUBSET_OLD_PARENT,
            eq(r, E.old(x)),
            LC(x),
            eq(F(x, "key"), old(F(x, "key"))),
            eq(F(x, "rank"), old(F(x, "rank"))),
            eq(F(x, "p"), old(F(x, "p"))),
            eq(F(x, "l", "p") if False else F(x, "keys"), union(old(F(x, "keys")), singleton(k))),
            eq(F(x, "min"), ite(lt(k, old(F(x, "min"))), k, old(F(x, "min")))),
            eq(F(x, "max"), ite(gt(k, old(F(x, "max"))), k, old(F(x, "max")))),
            subset(old(F(x, "hs")), F(x, "hs")),
            subset(F(x, "hs"), union(old(F(x, "hs")), fresh)),
        ],
        modifies=F(x, "hs"),
        locals={"z": LOC, "tmp": LOC},
        body=[
            SInferLCOutsideBr(x),
            SIf(
                eq(k, F(x, "key")),
                [SAssign("r", x)],
                [
                    SIf(
                        lt(k, F(x, "key")),
                        [
                            SIf(
                                isnil(F(x, "l")),
                                [
                                    SNewObj("z"),
                                    SMut(z, "key", k),
                                    SMut(z, "rank", sub(F(x, "rank"), E.R(1))),
                                    SMut(z, "min", k),
                                    SMut(z, "max", k),
                                    SMut(z, "keys", singleton(k)),
                                    SMut(z, "hs", singleton(z)),
                                    SMut(z, "p", x),
                                    SMut(x, "l", z),
                                    SAssertLCAndRemove(z),
                                    SMut(x, "min", k),
                                    SMut(x, "keys", union(F(x, "keys"), singleton(k))),
                                    SMut(x, "hs", union(F(x, "hs"), singleton(z))),
                                    SAssertLCAndRemove(x),
                                ],
                                [
                                    SInferLCOutsideBr(F(x, "l")),
                                    SCall(("tmp",), "bst_insert", (F(x, "l"), k)),
                                    SMut(x, "min", ite(lt(k, F(x, "min")), k, F(x, "min"))),
                                    SMut(x, "keys", union(F(x, "keys"), singleton(k))),
                                    SMut(x, "hs", union(F(x, "hs"), F(tmp, "hs"))),
                                    SAssertLCAndRemove(x),
                                ],
                            ),
                        ],
                        [
                            SIf(
                                isnil(F(x, "r")),
                                [
                                    SNewObj("z"),
                                    SMut(z, "key", k),
                                    SMut(z, "rank", sub(F(x, "rank"), E.R(1))),
                                    SMut(z, "min", k),
                                    SMut(z, "max", k),
                                    SMut(z, "keys", singleton(k)),
                                    SMut(z, "hs", singleton(z)),
                                    SMut(z, "p", x),
                                    SMut(x, "r", z),
                                    SAssertLCAndRemove(z),
                                    SMut(x, "max", k),
                                    SMut(x, "keys", union(F(x, "keys"), singleton(k))),
                                    SMut(x, "hs", union(F(x, "hs"), singleton(z))),
                                    SAssertLCAndRemove(x),
                                ],
                                [
                                    SInferLCOutsideBr(F(x, "r")),
                                    SCall(("tmp",), "bst_insert", (F(x, "r"), k)),
                                    SMut(x, "max", ite(gt(k, F(x, "max")), k, F(x, "max"))),
                                    SMut(x, "keys", union(F(x, "keys"), singleton(k))),
                                    SMut(x, "hs", union(F(x, "hs"), F(tmp, "hs"))),
                                    SAssertLCAndRemove(x),
                                ],
                            ),
                        ],
                    ),
                    SAssign("r", x),
                ],
            ),
        ],
    )


def proc_bst_extract_min():
    """Remove and return the minimum node of the subtree rooted at x.

    Outputs: ``m`` -- the detached minimum node (a valid singleton tree),
    ``rest`` -- the remaining subtree root (nil if x was a leaf)."""
    return mkproc(
        "bst_extract_min",
        params=[("x", LOC)],
        outs=[("m", LOC), ("rest", LOC)],
        requires=[EMPTY_BR, nonnil(x), LC(x)],
        ensures=[
            BR_SUBSET_OLD_PARENT,
            nonnil(m),
            LC(m),
            isnil(F(m, "p")),
            isnil(F(m, "l")),
            isnil(F(m, "r")),
            eq(F(m, "key"), old(F(x, "min"))),
            member(m, old(F(x, "hs"))),
            implies(
                nonnil(rest),
                and_(
                    LC(rest),
                    isnil(F(rest, "p")),
                    eq(F(rest, "keys"), diff(old(F(x, "keys")), singleton(old(F(x, "min"))))),
                    subset(F(rest, "hs"), old(F(x, "hs"))),
                    not_(member(m, F(rest, "hs"))),
                    le(F(rest, "rank"), old(F(x, "rank"))),
                    le(F(rest, "max"), old(F(x, "max"))),
                    all_ge(F(rest, "keys"), add(old(F(x, "min")), I(1))),
                ),
            ),
            implies(isnil(rest), eq(old(F(x, "keys")), singleton(old(F(x, "min"))))),
        ],
        modifies=F(x, "hs"),
        locals={"z": LOC, "tmp": LOC},
        body=[
            SInferLCOutsideBr(x),
            SIf(
                isnil(F(x, "l")),
                [
                    # x is the minimum; promote its right child
                    SAssign("m", x),
                    SAssign("rest", F(x, "r")),
                    SInferLCOutsideBr(rest),
                    SMut(x, "r", NIL_E),
                    SIf(
                        nonnil(rest),
                        [
                            SMut(rest, "p", NIL_E),
                            SAssertLCAndRemove(rest),
                        ],
                        [],
                    ),
                    *_fix_singleton(x),
                    SAssertLCAndRemove(x),
                ],
                [
                    SAssign("z", F(x, "l")),
                    SInferLCOutsideBr(z),
                    SCall(("m", "tmp"), "bst_extract_min", (z,)),
                    SIf(
                        nonnil(tmp),
                        [
                            SMut(x, "l", tmp),
                            SAssertLCAndRemove(z),
                            SMut(tmp, "p", x),
                            SAssertLCAndRemove(tmp),
                        ],
                        [
                            SMut(x, "l", NIL_E),
                            SAssertLCAndRemove(z),
                        ],
                    ),
                    *_refresh_measures(x),
                    SMut(x, "p", NIL_E),
                    SAssertLCAndRemove(x),
                    SAssign("rest", x),
                ],
            ),
        ],
    )


def proc_bst_remove_root():
    """Remove the node x itself from its subtree; return the new root."""
    return mkproc(
        "bst_remove_root",
        params=[("x", LOC)],
        outs=[("r", LOC)],
        requires=[EMPTY_BR, nonnil(x), LC(x)],
        ensures=[
            BR_SUBSET_OLD_PARENT,
            # x ends detached as a valid singleton
            LC(x),
            isnil(F(x, "p")),
            isnil(F(x, "l")),
            isnil(F(x, "r")),
            eq(F(x, "key"), old(F(x, "key"))),
            implies(
                nonnil(r),
                and_(
                    LC(r),
                    ne(r, E.old(x)),
                    isnil(F(r, "p")),
                    eq(F(r, "keys"), diff(old(F(x, "keys")), singleton(old(F(x, "key"))))),
                    subset(F(r, "hs"), old(F(x, "hs"))),
                    le(F(r, "rank"), old(F(x, "rank"))),
                    ge(F(r, "min"), old(F(x, "min"))),
                    le(F(r, "max"), old(F(x, "max"))),
                ),
            ),
            implies(isnil(r), eq(old(F(x, "keys")), singleton(old(F(x, "key"))))),
        ],
        modifies=F(x, "hs"),
        locals={"y": LOC, "z": LOC, "m": LOC, "rest": LOC},
        body=[
            SInferLCOutsideBr(x),
            SIf(
                and_(isnil(F(x, "l")), isnil(F(x, "r"))),
                [
                    SMut(x, "p", NIL_E),
                    SAssertLCAndRemove(x),
                    SAssign("r", NIL_E),
                ],
                [
                    SIf(
                        isnil(F(x, "l")),
                        [
                            # only a right child: promote it
                            SAssign("z", F(x, "r")),
                            SInferLCOutsideBr(z),
                            SMut(x, "r", NIL_E),
                            SMut(z, "p", NIL_E),
                            SAssertLCAndRemove(z),
                            *_fix_singleton(x),
                            SAssertLCAndRemove(x),
                            SAssign("r", z),
                        ],
                        [
                            SIf(
                                isnil(F(x, "r")),
                                [
                                    SAssign("z", F(x, "l")),
                                    SInferLCOutsideBr(z),
                                    SMut(x, "l", NIL_E),
                                    SMut(z, "p", NIL_E),
                                    SAssertLCAndRemove(z),
                                    *_fix_singleton(x),
                                    SAssertLCAndRemove(x),
                                    SAssign("r", z),
                                ],
                                [
                                    # two children: the minimum of the right
                                    # subtree becomes the new root
                                    SAssign("y", F(x, "l")),
                                    SAssign("z", F(x, "r")),
                                    SInferLCOutsideBr(y),
                                    SInferLCOutsideBr(z),
                                    SCall(("m", "rest"), "bst_extract_min", (z,)),
                                    SInferLCOutsideBr(y),
                                    SMut(x, "l", NIL_E),
                                    SMut(x, "r", NIL_E),
                                    SAssertLCAndRemove(z),
                                    SMut(m, "rank", F(x, "rank")),
                                    SMut(m, "l", y),
                                    SMut(y, "p", m),
                                    SAssertLCAndRemove(y),
                                    SIf(
                                        nonnil(rest),
                                        [
                                            SMut(m, "r", rest),
                                            SMut(rest, "p", m),
                                            SAssertLCAndRemove(rest),
                                        ],
                                        [],
                                    ),
                                    *_refresh_measures(m),
                                    SAssertLCAndRemove(m),
                                    *_fix_singleton(x),
                                    SAssertLCAndRemove(x),
                                    SAssign("r", m),
                                ],
                            ),
                        ],
                    ),
                ],
            ),
        ],
    )


def proc_bst_delete():
    """Delete key k from the subtree rooted at x; return the new root."""
    return mkproc(
        "bst_delete",
        params=[("x", LOC), ("k", INT)],
        outs=[("r", LOC)],
        requires=[EMPTY_BR, nonnil(x), LC(x)],
        ensures=[
            BR_SUBSET_OLD_PARENT,
            implies(
                nonnil(r),
                and_(
                    LC(r),
                    isnil(F(r, "p")),
                    eq(F(r, "keys"), diff(old(F(x, "keys")), singleton(k))),
                    subset(F(r, "hs"), old(F(x, "hs"))),
                    le(F(r, "rank"), old(F(x, "rank"))),
                    ge(F(r, "min"), old(F(x, "min"))),
                    le(F(r, "max"), old(F(x, "max"))),
                ),
            ),
            implies(isnil(r), subset(old(F(x, "keys")), singleton(k))),
        ],
        modifies=F(x, "hs"),
        locals={"z": LOC, "tmp": LOC},
        body=[
            SInferLCOutsideBr(x),
            SIf(
                eq(k, F(x, "key")),
                [SCall(("r",), "bst_remove_root", (x,))],
                [
                    SIf(
                        lt(k, F(x, "key")),
                        [
                            SIf(
                                isnil(F(x, "l")),
                                [
                                    SMut(x, "p", NIL_E),
                                    SAssertLCAndRemove(x),
                                    SAssign("r", x),
                                ],
                                [
                                    SAssign("z", F(x, "l")),
                                    SInferLCOutsideBr(z),
                                    SCall(("tmp",), "bst_delete", (z, k)),
                                    SInferLCOutsideBr(z),
                                    SIf(
                                        nonnil(tmp),
                                        [
                                            SMut(x, "l", tmp),
                                            SAssertLCAndRemove(z),
                                            SMut(tmp, "p", x),
                                            SAssertLCAndRemove(tmp),
                                        ],
                                        [
                                            SMut(x, "l", NIL_E),
                                            SAssertLCAndRemove(z),
                                        ],
                                    ),
                                    *_refresh_measures(x),
                                    SMut(x, "p", NIL_E),
                                    SAssertLCAndRemove(x),
                                    SAssign("r", x),
                                ],
                            ),
                        ],
                        [
                            SIf(
                                isnil(F(x, "r")),
                                [
                                    SMut(x, "p", NIL_E),
                                    SAssertLCAndRemove(x),
                                    SAssign("r", x),
                                ],
                                [
                                    SAssign("z", F(x, "r")),
                                    SInferLCOutsideBr(z),
                                    SCall(("tmp",), "bst_delete", (z, k)),
                                    SInferLCOutsideBr(z),
                                    SIf(
                                        nonnil(tmp),
                                        [
                                            SMut(x, "r", tmp),
                                            SAssertLCAndRemove(z),
                                            SMut(tmp, "p", x),
                                            SAssertLCAndRemove(tmp),
                                        ],
                                        [
                                            SMut(x, "r", NIL_E),
                                            SAssertLCAndRemove(z),
                                        ],
                                    ),
                                    *_refresh_measures(x),
                                    SMut(x, "p", NIL_E),
                                    SAssertLCAndRemove(x),
                                    SAssign("r", x),
                                ],
                            ),
                        ],
                    ),
                ],
            ),
        ],
    )


def bst_program() -> Program:
    procs = [
        proc_bst_find(),
        proc_bst_insert(),
        proc_bst_extract_min(),
        proc_bst_remove_root(),
        proc_bst_delete(),
    ]
    return Program(bst_signature(), {p.name: p for p in procs})


METHODS = ["bst_find", "bst_insert", "bst_delete", "bst_remove_root"]
