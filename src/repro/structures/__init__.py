"""The Table 2 benchmark suite: intrinsic definitions and FWYB-annotated
methods for ten data structures.  See ``registry`` for the experiment index."""
