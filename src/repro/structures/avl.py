"""AVL trees: height-balanced BSTs (Table 2: Insert, Delete, Balance,
Find-Min).

The intrinsic definition extends the BST definition with a ``height`` map:
``height(x) = 1 + max(h(l), h(r))`` (nil counts 0) and ``|h(l) - h(r)| <= 1``.

``avl_balance`` is the paper's standalone Balance method and showcases the
*nonempty broken set in a contract*: it takes a node x that is the single
broken object (``Br = {x}``) whose subtrees are valid AVL trees with a
balance factor off by at most two, repairs it with single/double rotations,
and returns the new subtree root detached from the old parent.
"""

from __future__ import annotations

from ..core.ids import IntrinsicDefinition
from ..lang import exprs as E
from ..lang.ast import (
    Program,
    SAssertLCAndRemove,
    SAssign,
    SCall,
    SIf,
    SInferLCOutsideBr,
    SMut,
    SNewObj,
)
from ..lang.exprs import (
    F,
    I,
    NIL_E,
    V,
    add,
    and_,
    diff,
    empty_int_set,
    empty_loc_set,
    eq,
    ge,
    gt,
    implies,
    ite,
    le,
    lt,
    member,
    not_,
    old,
    singleton,
    sub,
    subset,
    union,
)
from ..smt.sorts import INT, LOC, SET_LOC
from .bst import BST_IMPACT, bst_lc, bst_signature
from .common import EMPTY_BR, X, isnil, mkproc, nonnil

__all__ = ["avl_ids", "avl_program", "METHODS"]


def avl_signature():
    sig = bst_signature(extra_ghosts={"height": INT})
    sig.name = "AVL"
    return sig


def _h(node) -> E.Expr:
    return ite(isnil(node), I(0), F(node, "height"))


def avl_height_lc() -> E.Expr:
    hl = _h(F(X, "l"))
    hr = _h(F(X, "r"))
    return and_(
        eq(F(X, "height"), add(I(1), ite(ge(hl, hr), hl, hr))),
        le(sub(hl, hr), I(1)),
        le(sub(hr, hl), I(1)),
        ge(F(X, "height"), I(1)),
    )


def avl_lc() -> E.Expr:
    return and_(bst_lc(), avl_height_lc())


def avl_partial_lc_at(ids_sig_unused, obj) -> E.Expr:
    """Everything but the height conditions at obj, with balance off by at
    most 2 (the Balance method's entry state)."""
    from ..core.ids import LC_VAR
    from ..lang.exprs import subst_expr

    base = subst_expr(bst_lc(), {LC_VAR: obj})
    hl = _h(F(obj, "l"))
    hr = _h(F(obj, "r"))
    return and_(
        base,
        le(sub(hl, hr), I(2)),
        le(sub(hr, hl), I(2)),
    )


def avl_ids() -> IntrinsicDefinition:
    impact = dict(BST_IMPACT)
    impact["height"] = [X, F(X, "p")]
    return IntrinsicDefinition(
        name="AVL Tree",
        sig=avl_signature(),
        lc_parts={"Br": avl_lc()},
        correlation=isnil(F(X, "p")),
        impact=impact,
        steering_ghosts=frozenset({"p", "height"}),
    )


_ids = avl_ids()
LC = lambda obj: _ids.lc_at(obj)  # noqa: E731

x, y, z, w, k, r, m, tmp, rest, b, xp = (
    V("x"),
    V("y"),
    V("z"),
    V("w"),
    V("k"),
    V("r"),
    V("m"),
    V("tmp"),
    V("rest"),
    V("b"),
    V("xp"),
)


def _refresh_measures(node, with_height=True):
    l, r_ = F(node, "l"), F(node, "r")
    out = [
        SMut(node, "min", ite(nonnil(l), F(node, "l", "min"), F(node, "key"))),
        SMut(node, "max", ite(nonnil(r_), F(node, "r", "max"), F(node, "key"))),
        SMut(
            node,
            "keys",
            union(
                singleton(F(node, "key")),
                ite(nonnil(l), F(node, "l", "keys"), empty_int_set()),
                ite(nonnil(r_), F(node, "r", "keys"), empty_int_set()),
            ),
        ),
        SMut(
            node,
            "hs",
            union(
                singleton(node),
                ite(nonnil(l), F(node, "l", "hs"), empty_loc_set()),
                ite(nonnil(r_), F(node, "r", "hs"), empty_loc_set()),
            ),
        ),
    ]
    if with_height:
        out.append(
            SMut(
                node,
                "height",
                add(I(1), ite(ge(_h(l), _h(r_)), _h(l), _h(r_))),
            )
        )
    return out


def _fix_singleton(node):
    return [
        SMut(node, "p", NIL_E),
        SMut(node, "min", F(node, "key")),
        SMut(node, "max", F(node, "key")),
        SMut(node, "keys", singleton(F(node, "key"))),
        SMut(node, "hs", singleton(node)),
        SMut(node, "height", I(1)),
    ]


def _rotate_right(a, bvar, rankexpr):
    """a's left child bvar becomes the local root; returns statements.
    Precondition (established by callers): a, bvar both in Br or about to
    be repaired; w is a free local name."""
    return [
        SAssign("w", F(bvar, "r")),
        SMut(a, "l", V("w")),
        SMut(bvar, "r", a),
        SMut(bvar, "p", NIL_E),
        SIf(nonnil(V("w")), [SMut(V("w"), "p", a)], []),
        SAssertLCAndRemove(V("w")),
        *_refresh_measures(a),
        SMut(a, "p", bvar),
        SMut(bvar, "rank", rankexpr),
        SAssertLCAndRemove(a),
        *_refresh_measures(bvar),
    ]


def _rotate_left(a, bvar, rankexpr):
    return [
        SAssign("w", F(bvar, "l")),
        SMut(a, "r", V("w")),
        SMut(bvar, "l", a),
        SMut(bvar, "p", NIL_E),
        SIf(nonnil(V("w")), [SMut(V("w"), "p", a)], []),
        SAssertLCAndRemove(V("w")),
        *_refresh_measures(a),
        SMut(a, "p", bvar),
        SMut(bvar, "rank", rankexpr),
        SAssertLCAndRemove(a),
        *_refresh_measures(bvar),
    ]


def _new_rank(xpv, av):
    return ite(
        isnil(xpv),
        add(F(av, "rank"), E.R(1)),
        E.div(add(F(xpv, "rank"), F(av, "rank")), E.R(2)),
    )


def proc_avl_balance():
    """The standalone Balance: repair a single off-by-two node.

    Entry: Br = {x}; x satisfies everything but the AVL height conditions,
    with a balance factor within 2 and a stale height field; children are
    valid AVL trees.  Exit: Br (= possibly {old p(x)}) and a valid subtree
    root r with height within [old children max, old children max + 2]."""
    hl0 = _h(old(F(x, "l")))
    hr0 = _h(old(F(x, "r")))
    maxh0 = ite(ge(hl0, hr0), hl0, hr0)
    others = V("others")
    return mkproc(
        "avl_balance",
        params=[("x", LOC), ("xp", LOC), ("others", SET_LOC)],
        outs=[("r", LOC)],
        requires=[
            nonnil(x),
            member(x, E.BR),
            subset(E.BR, union(singleton(x), others)),
            not_(member(x, others)),
            avl_partial_lc_at(None, x),
            eq(F(x, "p"), xp),
            implies(nonnil(xp), lt(F(x, "rank"), F(xp, "rank"))),
        ],
        ensures=[
            subset(
                E.BR,
                union(
                    E.old(others),
                    ite(isnil(E.old(xp)), empty_loc_set(), singleton(E.old(xp))),
                ),
            ),
            nonnil(r),
            LC(r),
            isnil(F(r, "p")),
            eq(F(r, "keys"), old(F(x, "keys"))),
            eq(F(r, "hs"), old(F(x, "hs"))),
            ge(F(r, "min"), old(F(x, "min"))),
            le(F(r, "max"), old(F(x, "max"))),
            implies(nonnil(E.old(xp)), lt(F(r, "rank"), old(F(xp, "rank")))),
            le(F(r, "height"), add(maxh0, I(1))),
            ge(F(r, "height"), maxh0),
        ],
        modifies=F(x, "hs"),
        locals={"y": LOC, "z": LOC, "w": LOC},
        body=[
            SIf(
                ge(sub(_h(F(x, "l")), _h(F(x, "r"))), I(2)),
                [
                    # left heavy
                    SAssign("y", F(x, "l")),
                    SInferLCOutsideBr(y),
                    SIf(
                        ge(_h(F(y, "l")), _h(F(y, "r"))),
                        [
                            # single right rotation
                            *_rotate_right(x, y, _new_rank(xp, x)),
                            SAssertLCAndRemove(y),
                            SAssign("r", y),
                        ],
                        [
                            # double rotation: left-rotate y with z = y.r,
                            # then right-rotate x with z
                            SAssign("z", F(y, "r")),
                            SInferLCOutsideBr(z),
                            # detach y from x temporarily is implicit: we
                            # rotate y/z first (y is outside Br: add it)
                            SAssign("w", F(z, "l")),
                            SMut(y, "r", V("w")),
                            SMut(z, "l", y),
                            SMut(z, "p", NIL_E),
                            SIf(nonnil(V("w")), [SMut(V("w"), "p", y)], []),
                            SAssertLCAndRemove(V("w")),
                            *_refresh_measures(y),
                            SMut(y, "p", z),
                            SMut(z, "rank", E.div(add(F(x, "rank"), F(y, "rank")), E.R(2))),
                            SAssertLCAndRemove(y),
                            *_refresh_measures(z),
                            SMut(x, "l", z),
                            SMut(z, "p", x),
                            # z stays broken until the outer rotation (its
                            # balance factor can legitimately be 2 here);
                            # the re-attach re-broke the inner-rotated child
                            SAssertLCAndRemove(y),
                            # now single right rotation of (x, z)
                            SAssign("y", F(x, "l")),
                            *_rotate_right(x, y, _new_rank(xp, x)),
                            SAssertLCAndRemove(y),
                            SAssign("r", y),
                        ],
                    ),
                ],
                [
                    SIf(
                        ge(sub(_h(F(x, "r")), _h(F(x, "l"))), I(2)),
                        [
                            # right heavy
                            SAssign("y", F(x, "r")),
                            SInferLCOutsideBr(y),
                            SIf(
                                ge(_h(F(y, "r")), _h(F(y, "l"))),
                                [
                                    *_rotate_left(x, y, _new_rank(xp, x)),
                                    SAssertLCAndRemove(y),
                                    SAssign("r", y),
                                ],
                                [
                                    SAssign("z", F(y, "l")),
                                    SInferLCOutsideBr(z),
                                    SAssign("w", F(z, "r")),
                                    SMut(y, "l", V("w")),
                                    SMut(z, "r", y),
                                    SMut(z, "p", NIL_E),
                                    SIf(nonnil(V("w")), [SMut(V("w"), "p", y)], []),
                                    SAssertLCAndRemove(V("w")),
                                    *_refresh_measures(y),
                                    SMut(y, "p", z),
                                    SMut(z, "rank", E.div(add(F(x, "rank"), F(y, "rank")), E.R(2))),
                                    SAssertLCAndRemove(y),
                                    *_refresh_measures(z),
                                    SMut(x, "r", z),
                                    SMut(z, "p", x),
                                    SAssertLCAndRemove(y),
                                    SAssign("y", F(x, "r")),
                                    *_rotate_left(x, y, _new_rank(xp, x)),
                                    SAssertLCAndRemove(y),
                                    SAssign("r", y),
                                ],
                            ),
                        ],
                        [
                            # balanced enough: just refresh the height
                            *_refresh_measures(x),
                            SMut(x, "p", NIL_E),
                            SAssertLCAndRemove(x),
                            SAssign("r", x),
                        ],
                    ),
                ],
            ),
        ],
        is_well_behaved=True,
    )


BR_SUBSET_OLD_PARENT = subset(
    E.BR,
    ite(isnil(old(F(x, "p"))), empty_loc_set(), singleton(old(F(x, "p")))),
)


def proc_avl_insert():
    fresh = diff(E.ALLOC, old(E.ALLOC))
    return mkproc(
        "avl_insert",
        params=[("x", LOC), ("k", INT)],
        outs=[("r", LOC)],
        requires=[EMPTY_BR, nonnil(x), LC(x)],
        ensures=[
            BR_SUBSET_OLD_PARENT,
            nonnil(r),
            LC(r),
            isnil(F(r, "p")),
            eq(F(r, "keys"), union(old(F(x, "keys")), singleton(k))),
            subset(old(F(x, "hs")), F(r, "hs")),
            subset(F(r, "hs"), union(old(F(x, "hs")), fresh)),
            implies(
                isnil(old(F(x, "p"))),
                le(F(r, "rank"), add(old(F(x, "rank")), E.R(1))),
            ),
            implies(
                nonnil(old(F(x, "p"))),
                lt(F(r, "rank"), old(F(x, "p", "rank"))),
            ),
            ge(F(r, "min"), ite(lt(k, old(F(x, "min"))), k, old(F(x, "min")))),
            le(F(r, "max"), ite(gt(k, old(F(x, "max"))), k, old(F(x, "max")))),
            ge(F(r, "height"), old(F(x, "height"))),
            le(F(r, "height"), add(old(F(x, "height")), I(1))),
        ],
        modifies=F(x, "hs"),
        locals={"z": LOC, "tmp": LOC, "y": LOC, "xp": LOC},
        body=[
            SInferLCOutsideBr(x),
            SInferLCOutsideBr(F(x, "p")),
            SAssign("xp", F(x, "p")),
            SIf(
                eq(k, F(x, "key")),
                [
                    SMut(x, "p", NIL_E),
                    SAssertLCAndRemove(x),
                    SAssign("r", x),
                ],
                [
                    SIf(
                        lt(k, F(x, "key")),
                        [
                            SAssign("y", F(x, "l")),
                            SIf(
                                isnil(F(x, "l")),
                                [
                                    SNewObj("z"),
                                    SMut(z, "key", k),
                                    SMut(z, "rank", sub(F(x, "rank"), E.R(1))),
                                    SMut(z, "min", k),
                                    SMut(z, "max", k),
                                    SMut(z, "keys", singleton(k)),
                                    SMut(z, "hs", singleton(z)),
                                    SMut(z, "height", I(1)),
                                    SAssertLCAndRemove(z),
                                    SAssign("tmp", z),
                                ],
                                [
                                    SInferLCOutsideBr(y),
                                    SCall(("tmp",), "avl_insert", (y, k)),
                                    SInferLCOutsideBr(y),
                                ],
                            ),
                            SMut(x, "l", tmp),
                            SAssertLCAndRemove(y),
                            SMut(tmp, "p", x),
                            SAssertLCAndRemove(tmp),
                        ],
                        [
                            SAssign("y", F(x, "r")),
                            SIf(
                                isnil(F(x, "r")),
                                [
                                    SNewObj("z"),
                                    SMut(z, "key", k),
                                    SMut(z, "rank", sub(F(x, "rank"), E.R(1))),
                                    SMut(z, "min", k),
                                    SMut(z, "max", k),
                                    SMut(z, "keys", singleton(k)),
                                    SMut(z, "hs", singleton(z)),
                                    SMut(z, "height", I(1)),
                                    SAssertLCAndRemove(z),
                                    SAssign("tmp", z),
                                ],
                                [
                                    SInferLCOutsideBr(y),
                                    SCall(("tmp",), "avl_insert", (y, k)),
                                    SInferLCOutsideBr(y),
                                ],
                            ),
                            SMut(x, "r", tmp),
                            SAssertLCAndRemove(y),
                            SMut(tmp, "p", x),
                            SAssertLCAndRemove(tmp),
                        ],
                    ),
                    *_refresh_measures(x, with_height=False),
                    SCall(
                        ("r",),
                        "avl_balance",
                        (x, xp, ite(isnil(xp), empty_loc_set(), singleton(xp))),
                    ),
                ],
            ),
        ],
    )


def proc_avl_delete():
    return mkproc(
        "avl_delete",
        params=[("x", LOC), ("k", INT)],
        outs=[("r", LOC)],
        requires=[EMPTY_BR, nonnil(x), LC(x)],
        ensures=[
            BR_SUBSET_OLD_PARENT,
            implies(
                nonnil(r),
                and_(
                    LC(r),
                    isnil(F(r, "p")),
                    eq(F(r, "keys"), diff(old(F(x, "keys")), singleton(k))),
                    subset(F(r, "hs"), old(F(x, "hs"))),
                    implies(
                        nonnil(old(F(x, "p"))),
                        lt(F(r, "rank"), old(F(x, "p", "rank"))),
                    ),
                    implies(
                        isnil(old(F(x, "p"))),
                        le(F(r, "rank"), add(old(F(x, "rank")), E.R(1))),
                    ),
                    ge(F(r, "min"), old(F(x, "min"))),
                    le(F(r, "max"), old(F(x, "max"))),
                    le(F(r, "height"), old(F(x, "height"))),
                    ge(F(r, "height"), sub(old(F(x, "height")), I(1))),
                ),
            ),
            implies(isnil(r), subset(old(F(x, "keys")), singleton(k))),
        ],
        modifies=F(x, "hs"),
        locals={
            "z": LOC,
            "tmp": LOC,
            "y": LOC,
            "xp": LOC,
            "m": LOC,
            "rest": LOC,
        },
        body=[
            SInferLCOutsideBr(x),
            SInferLCOutsideBr(F(x, "p")),
            SAssign("xp", F(x, "p")),
            SIf(
                eq(k, F(x, "key")),
                [
                    SIf(
                        and_(isnil(F(x, "l")), isnil(F(x, "r"))),
                        [
                            SMut(x, "p", NIL_E),
                            SAssertLCAndRemove(x),
                            SAssign("r", NIL_E),
                        ],
                        [
                            SIf(
                                isnil(F(x, "l")),
                                [
                                    SAssign("z", F(x, "r")),
                                    SInferLCOutsideBr(z),
                                    SMut(x, "r", NIL_E),
                                    SMut(z, "p", NIL_E),
                                    SAssertLCAndRemove(z),
                                    *_fix_singleton(x),
                                    SAssertLCAndRemove(x),
                                    SAssign("r", z),
                                ],
                                [
                                    SIf(
                                        isnil(F(x, "r")),
                                        [
                                            SAssign("z", F(x, "l")),
                                            SInferLCOutsideBr(z),
                                            SMut(x, "l", NIL_E),
                                            SMut(z, "p", NIL_E),
                                            SAssertLCAndRemove(z),
                                            *_fix_singleton(x),
                                            SAssertLCAndRemove(x),
                                            SAssign("r", z),
                                        ],
                                        [
                                            # two children: splice min of right
                                            SAssign("y", F(x, "l")),
                                            SAssign("z", F(x, "r")),
                                            SInferLCOutsideBr(y),
                                            SInferLCOutsideBr(z),
                                            SCall(("m", "rest"), "avl_extract_min", (z,)),
                                            SInferLCOutsideBr(y),
                                            SMut(x, "l", NIL_E),
                                            SMut(x, "r", NIL_E),
                                            SAssertLCAndRemove(z),
                                            SMut(m, "rank", F(x, "rank")),
                                            SMut(m, "l", y),
                                            SMut(y, "p", m),
                                            SAssertLCAndRemove(y),
                                            SIf(
                                                nonnil(rest),
                                                [
                                                    SMut(m, "r", rest),
                                                    SMut(rest, "p", m),
                                                    SAssertLCAndRemove(rest),
                                                ],
                                                [],
                                            ),
                                            *_refresh_measures(m, with_height=False),
                                            *_fix_singleton(x),
                                            SAssertLCAndRemove(x),
                                            SCall(("r",), "avl_balance", (m, NIL_E, ite(isnil(xp), empty_loc_set(), singleton(xp)))),
                                        ],
                                    ),
                                ],
                            ),
                        ],
                    ),
                ],
                [
                    SIf(
                        lt(k, F(x, "key")),
                        [
                            SIf(
                                isnil(F(x, "l")),
                                [
                                    SMut(x, "p", NIL_E),
                                    SAssertLCAndRemove(x),
                                    SAssign("r", x),
                                ],
                                [
                                    SAssign("z", F(x, "l")),
                                    SInferLCOutsideBr(z),
                                    SCall(("tmp",), "avl_delete", (z, k)),
                                    SInferLCOutsideBr(z),
                                    SIf(
                                        nonnil(tmp),
                                        [
                                            SMut(x, "l", tmp),
                                            SAssertLCAndRemove(z),
                                            SMut(tmp, "p", x),
                                            SAssertLCAndRemove(tmp),
                                        ],
                                        [
                                            SMut(x, "l", NIL_E),
                                            SAssertLCAndRemove(z),
                                        ],
                                    ),
                                    *_refresh_measures(x, with_height=False),
                                    SCall(("r",), "avl_balance", (x, xp, ite(isnil(xp), empty_loc_set(), singleton(xp)))),
                                ],
                            ),
                        ],
                        [
                            SIf(
                                isnil(F(x, "r")),
                                [
                                    SMut(x, "p", NIL_E),
                                    SAssertLCAndRemove(x),
                                    SAssign("r", x),
                                ],
                                [
                                    SAssign("z", F(x, "r")),
                                    SInferLCOutsideBr(z),
                                    SCall(("tmp",), "avl_delete", (z, k)),
                                    SInferLCOutsideBr(z),
                                    SIf(
                                        nonnil(tmp),
                                        [
                                            SMut(x, "r", tmp),
                                            SAssertLCAndRemove(z),
                                            SMut(tmp, "p", x),
                                            SAssertLCAndRemove(tmp),
                                        ],
                                        [
                                            SMut(x, "r", NIL_E),
                                            SAssertLCAndRemove(z),
                                        ],
                                    ),
                                    *_refresh_measures(x, with_height=False),
                                    SCall(("r",), "avl_balance", (x, xp, ite(isnil(xp), empty_loc_set(), singleton(xp)))),
                                ],
                            ),
                        ],
                    ),
                ],
            ),
        ],
    )


def proc_avl_extract_min():
    """extract-min with rebalancing on the way up."""
    return mkproc(
        "avl_extract_min",
        params=[("x", LOC)],
        outs=[("m", LOC), ("rest", LOC)],
        requires=[EMPTY_BR, nonnil(x), LC(x)],
        ensures=[
            BR_SUBSET_OLD_PARENT,
            nonnil(m),
            LC(m),
            isnil(F(m, "p")),
            isnil(F(m, "l")),
            isnil(F(m, "r")),
            eq(F(m, "key"), old(F(x, "min"))),
            member(m, old(F(x, "hs"))),
            implies(
                nonnil(rest),
                and_(
                    LC(rest),
                    isnil(F(rest, "p")),
                    eq(F(rest, "keys"), diff(old(F(x, "keys")), singleton(old(F(x, "min"))))),
                    subset(F(rest, "hs"), old(F(x, "hs"))),
                    not_(member(m, F(rest, "hs"))),
                    implies(
                        nonnil(old(F(x, "p"))),
                        lt(F(rest, "rank"), old(F(x, "p", "rank"))),
                    ),
                    implies(
                        isnil(old(F(x, "p"))),
                        le(F(rest, "rank"), add(old(F(x, "rank")), E.R(1))),
                    ),
                    le(F(rest, "max"), old(F(x, "max"))),
                    E.all_ge(F(rest, "keys"), add(old(F(x, "min")), I(1))),
                    le(F(rest, "height"), old(F(x, "height"))),
                    ge(F(rest, "height"), sub(old(F(x, "height")), I(1))),
                ),
            ),
            implies(isnil(rest), eq(old(F(x, "keys")), singleton(old(F(x, "min"))))),
        ],
        modifies=F(x, "hs"),
        locals={"z": LOC, "tmp": LOC, "xp": LOC, "y": LOC, "w": LOC},
        body=[
            SInferLCOutsideBr(x),
            SInferLCOutsideBr(F(x, "p")),
            SAssign("xp", F(x, "p")),
            SIf(
                isnil(F(x, "l")),
                [
                    SAssign("m", x),
                    SAssign("rest", F(x, "r")),
                    SInferLCOutsideBr(rest),
                    SMut(x, "r", NIL_E),
                    SIf(
                        nonnil(rest),
                        [SMut(rest, "p", NIL_E), SAssertLCAndRemove(rest)],
                        [],
                    ),
                    *_fix_singleton(x),
                    SAssertLCAndRemove(x),
                ],
                [
                    SAssign("z", F(x, "l")),
                    SInferLCOutsideBr(z),
                    SCall(("m", "tmp"), "avl_extract_min", (z,)),
                    SIf(
                        nonnil(tmp),
                        [
                            SMut(x, "l", tmp),
                            SAssertLCAndRemove(z),
                            SMut(tmp, "p", x),
                            SAssertLCAndRemove(tmp),
                        ],
                        [
                            SMut(x, "l", NIL_E),
                            SAssertLCAndRemove(z),
                        ],
                    ),
                    *_refresh_measures(x, with_height=False),
                    SCall(("rest",), "avl_balance", (x, xp, ite(isnil(xp), empty_loc_set(), singleton(xp)))),
                ],
            ),
        ],
    )


def proc_avl_find_min():
    return mkproc(
        "avl_find_min",
        params=[("x", LOC)],
        outs=[("k", INT)],
        requires=[EMPTY_BR, nonnil(x), LC(x)],
        ensures=[
            EMPTY_BR,
            eq(k, old(F(x, "min"))),
            member(k, old(F(x, "keys"))),
        ],
        modifies=empty_loc_set(),
        body=[
            SInferLCOutsideBr(x),
            SIf(
                isnil(F(x, "l")),
                [SAssign("k", F(x, "key"))],
                [
                    SInferLCOutsideBr(F(x, "l")),
                    SCall(("k",), "avl_find_min", (F(x, "l"),)),
                ],
            ),
        ],
    )


def avl_program() -> Program:
    procs = [
        proc_avl_balance(),
        proc_avl_insert(),
        proc_avl_delete(),
        proc_avl_extract_min(),
        proc_avl_find_min(),
    ]
    return Program(avl_signature(), {p.name: p for p in procs})


METHODS = ["avl_insert", "avl_delete", "avl_balance", "avl_find_min"]


def build_avl(sig, keys):
    """Balanced build (a balanced BST of distinct keys is a valid AVL)."""
    from .treebuild import build_bst

    heap, root = build_bst(sig, keys)

    def set_heights(node):
        if node is None:
            return 0
        h = 1 + max(set_heights(heap.read(node, "l")), set_heights(heap.read(node, "r")))
        heap.write(node, "height", h)
        return h

    set_heights(root)
    return heap, root
