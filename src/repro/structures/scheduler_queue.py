"""The overlaid scheduler queue (Section 4.4): a FIFO linked list overlaid
on a binary search tree sharing the same nodes, as in the Linux deadline
I/O scheduler.

The intrinsic definition is *compositional*, exactly as the paper
describes: the list conditions and the BST conditions are separate LC
partitions with their own broken sets (``Br_list`` and ``Br_bst``), plus
linking conditions tying the two overlays together:

- every node knows its list head (``lhead``) and its BST root (``broot``);
- neighbours agree on both (so all nodes of one structure share them);
- the correlation predicate ``Valid(h, r)`` of Section 4.4:
  ``broot(h) = r`` and ``lhead(r) = h``.

Mutating a list pointer breaks only list conditions (enters ``Br_list``),
mutating a tree pointer only BST conditions -- the finer-grained broken
sets the paper advocates at the end of Section 3.5.
"""

from __future__ import annotations

from ..core.ids import IntrinsicDefinition
from ..lang import exprs as E
from ..lang.ast import (
    ClassSignature,
    Program,
    SAssertLCAndRemove,
    SAssign,
    SCall,
    SIf,
    SInferLCOutsideBr,
    SMut,
)
from ..lang.exprs import (
    B,
    F,
    I,
    NIL_E,
    V,
    add,
    and_,
    empty_loc_set,
    eq,
    implies,
    le,
    lt,
    ne,
    old,
    or_,
    singleton,
    subset,
    union,
)
from ..smt.sorts import BOOL, INT, LOC, REAL
from .common import X, isnil, mkproc, nonnil

__all__ = ["sched_ids", "sched_program", "build_sched", "METHODS"]


def sched_signature() -> ClassSignature:
    return ClassSignature(
        name="SchedulerQueue",
        fields={"next": LOC, "l": LOC, "r": LOC, "key": INT},
        ghosts={
            # list overlay
            "prev": LOC,
            "llen": INT,
            # bst overlay
            "p": LOC,
            "rank": REAL,
            "min": INT,
            "max": INT,
            "broot": LOC,
        },
    )


def sched_list_lc() -> E.Expr:
    """The FIFO-list partition (checked against Br_list)."""
    nxt = F(X, "next")
    return and_(
        implies(nonnil(F(X, "prev")), eq(F(X, "prev", "next"), X)),
        implies(
            nonnil(nxt),
            and_(
                eq(F(X, "next", "prev"), X),
                eq(F(X, "llen"), add(I(1), F(X, "next", "llen"))),
            ),
        ),
        implies(isnil(nxt), eq(F(X, "llen"), I(1))),
        # linking: list neighbours live in the same BST
        implies(nonnil(nxt), eq(F(X, "next", "broot"), F(X, "broot"))),
    )


def sched_bst_lc() -> E.Expr:
    """The BST partition (checked against Br_bst)."""
    l, r, key = F(X, "l"), F(X, "r"), F(X, "key")
    return and_(
        nonnil(F(X, "broot")),
        le(F(X, "min"), key),
        le(key, F(X, "max")),
        implies(isnil(F(X, "p")), eq(F(X, "broot"), X)),
        implies(
            nonnil(F(X, "p")),
            and_(
                or_(eq(F(X, "p", "l"), X), eq(F(X, "p", "r"), X)),
                eq(F(X, "broot"), F(X, "p", "broot")),
            ),
        ),
        implies(
            nonnil(l),
            and_(
                eq(F(X, "l", "p"), X),
                lt(F(X, "l", "rank"), F(X, "rank")),
                lt(F(X, "l", "max"), key),
                eq(F(X, "min"), F(X, "l", "min")),
            ),
        ),
        implies(isnil(l), eq(F(X, "min"), key)),
        implies(
            nonnil(r),
            and_(
                eq(F(X, "r", "p"), X),
                lt(F(X, "r", "rank"), F(X, "rank")),
                lt(key, F(X, "r", "min")),
                eq(F(X, "max"), F(X, "r", "max")),
            ),
        ),
        implies(isnil(r), eq(F(X, "max"), key)),
        implies(and_(nonnil(l), nonnil(r)), ne(l, r)),
        # linking: tree children agree on the shared root anchor
        implies(nonnil(l), eq(F(X, "l", "broot"), F(X, "broot"))),
        implies(nonnil(r), eq(F(X, "r", "broot"), F(X, "broot"))),
    )


def sched_ids() -> IntrinsicDefinition:
    list_impact = {
        "next": [X, E.old(F(X, "next"))],
        "prev": [X, E.old(F(X, "prev"))],
        "llen": [X, F(X, "prev")],
        "key": [],
        "l": [],
        "r": [],
        "p": [],
        "rank": [],
        "min": [],
        "max": [],
        "broot": [X, F(X, "prev")],
    }
    bst_impact = {
        "l": [X, E.old(F(X, "l"))],
        "r": [X, E.old(F(X, "r"))],
        "p": [X, E.old(F(X, "p"))],
        "key": [X, F(X, "p")],
        "rank": [X, F(X, "p")],
        "min": [X, F(X, "p")],
        "max": [X, F(X, "p")],
        "broot": [X, F(X, "l"), F(X, "r"), F(X, "p")],
        "next": [],
        "prev": [],
        "llen": [],
    }
    return IntrinsicDefinition(
        name="Scheduler Queue (overlaid SLL+BST)",
        sig=sched_signature(),
        lc_parts={"Br_list": sched_list_lc(), "Br_bst": sched_bst_lc()},
        correlation=isnil(F(X, "prev")),
        impact={
            field: {
                "Br_list": list_impact.get(field, [X]),
                "Br_bst": bst_impact.get(field, [X]),
            }
            for field in sched_signature().all_fields
        },
        steering_ghosts=frozenset({"prev", "p", "broot"}),
    )


_ids = sched_ids()
LCL = lambda obj: _ids.lc_at(obj, "Br_list")  # noqa: E731
LCB = lambda obj: _ids.lc_at(obj, "Br_bst")  # noqa: E731

h, x, y, z, k, r, b, n2 = V("h"), V("x"), V("y"), V("z"), V("k"), V("r"), V("b"), V("n2")

EMPTY_BOTH = and_(
    eq(V("Br_list"), empty_loc_set()),
    eq(V("Br_bst"), empty_loc_set()),
)


def proc_sched_find():
    """Search the BST overlay for a key (the scheduler's fast lookup)."""
    return mkproc(
        "sched_find",
        params=[("x", LOC), ("k", INT)],
        outs=[("b", BOOL)],
        requires=[EMPTY_BOTH, nonnil(x), LCB(x)],
        ensures=[EMPTY_BOTH],
        modifies=empty_loc_set(),
        body=[
            SInferLCOutsideBr(x, broken_set="Br_bst"),
            SIf(
                eq(F(x, "key"), k),
                [SAssign("b", B(True))],
                [
                    SIf(
                        lt(k, F(x, "key")),
                        [
                            SIf(
                                isnil(F(x, "l")),
                                [SAssign("b", B(False))],
                                [
                                    SInferLCOutsideBr(F(x, "l"), broken_set="Br_bst"),
                                    SCall(("b",), "sched_find", (F(x, "l"), k)),
                                ],
                            ),
                        ],
                        [
                            SIf(
                                isnil(F(x, "r")),
                                [SAssign("b", B(False))],
                                [
                                    SInferLCOutsideBr(F(x, "r"), broken_set="Br_bst"),
                                    SCall(("b",), "sched_find", (F(x, "r"), k)),
                                ],
                            ),
                        ],
                    ),
                ],
            ),
        ],
    )


def proc_sched_list_remove_first():
    """Unlink the FIFO head from the *list overlay only*.  The removed node
    stays in the BST: its list conditions are repaired to a singleton list,
    but the linking invariant of the full structure is the caller's business
    (Move-Request below completes the removal) -- this is the paper's
    auxiliary method with method-local broken-set contracts."""
    return mkproc(
        "sched_list_remove_first",
        params=[("h", LOC)],
        outs=[("r", LOC)],
        requires=[
            EMPTY_BOTH,
            nonnil(h),
            LCL(h),
            isnil(F(h, "prev")),
            nonnil(F(h, "next")),
        ],
        ensures=[
            EMPTY_BOTH,
            eq(r, old(F(h, "next"))),
            nonnil(r),
            LCL(r),
            isnil(F(r, "prev")),
            # the popped head h is now a singleton list (still in the BST)
            LCL(h),
            isnil(F(h, "next")),
        ],
        modifies=union(singleton(h), singleton(F(h, "next"))),
        locals={"n2": LOC},
        body=[
            SInferLCOutsideBr(h, broken_set="Br_list"),
            SAssign("n2", F(h, "next")),
            SInferLCOutsideBr(n2, broken_set="Br_list"),
            SMut(h, "next", NIL_E),
            SMut(n2, "prev", NIL_E),
            SMut(h, "llen", I(1)),
            SAssertLCAndRemove(h, broken_set="Br_list"),
            SAssertLCAndRemove(n2, broken_set="Br_list"),
            SAssertLCAndRemove(h, broken_set="Br_bst"),
            SAssertLCAndRemove(n2, broken_set="Br_bst"),
            SAssign("r", n2),
        ],
    )


def proc_sched_bst_delete_leaf():
    """Remove a BST *leaf* from the tree overlay only (the scheduler drops
    the dispatched request from the search index)."""
    return mkproc(
        "sched_bst_delete_leaf",
        params=[("x", LOC)],
        outs=[],
        requires=[
            EMPTY_BOTH,
            nonnil(x),
            LCB(x),
            LCL(x),
            isnil(F(x, "l")),
            isnil(F(x, "r")),
            nonnil(F(x, "p")),
            LCB(F(x, "p")),
            # x must already be out of the FIFO overlay (a singleton list),
            # else removing it from the tree would break the link invariant
            isnil(F(x, "prev")),
            isnil(F(x, "next")),
        ],
        ensures=[
            and_(
                eq(V("Br_list"), empty_loc_set()),
                subset(V("Br_bst"), singleton(old(F(x, "p")))),
            ),
            isnil(F(x, "p")),
            eq(F(x, "broot"), x),
        ],
        modifies=union(singleton(x), singleton(F(x, "p"))),
        locals={"y": LOC},
        body=[
            SInferLCOutsideBr(x, broken_set="Br_bst"),
            SAssign("y", F(x, "p")),
            SInferLCOutsideBr(y, broken_set="Br_bst"),
            SIf(
                eq(F(y, "l"), x),
                [SMut(y, "l", NIL_E)],
                [SMut(y, "r", NIL_E)],
            ),
            SMut(x, "p", NIL_E),
            SMut(x, "broot", x),
            SMut(x, "min", F(x, "key")),
            SMut(x, "max", F(x, "key")),
            SAssertLCAndRemove(x, broken_set="Br_bst"),
            SAssertLCAndRemove(x, broken_set="Br_list"),
            SAssertLCAndRemove(y, broken_set="Br_list"),
        ],
    )


def proc_sched_move_request():
    """The paper's Move-Request: dispatch the oldest request -- pop it from
    the FIFO overlay and drop it from the BST overlay (here: when it is a
    BST leaf; the caller rotates it down otherwise)."""
    return mkproc(
        "sched_move_request",
        params=[("h", LOC)],
        outs=[("r", LOC)],
        requires=[
            EMPTY_BOTH,
            nonnil(h),
            LCL(h),
            LCB(h),
            isnil(F(h, "prev")),
            nonnil(F(h, "next")),
            isnil(F(h, "l")),
            isnil(F(h, "r")),
            nonnil(F(h, "p")),
            LCB(F(h, "p")),
        ],
        ensures=[
            and_(
                eq(V("Br_list"), empty_loc_set()),
                subset(V("Br_bst"), singleton(old(F(h, "p")))),
            ),
            eq(r, old(F(h, "next"))),
            # h is now fully detached: a singleton list and a singleton tree
            LCL(h),
            isnil(F(h, "next")),
            isnil(F(h, "p")),
        ],
        modifies=union(
            singleton(h), union(singleton(F(h, "next")), singleton(F(h, "p")))
        ),
        body=[
            SCall(("r",), "sched_list_remove_first", (h,)),
            SCall((), "sched_bst_delete_leaf", (h,)),
        ],
    )


def sched_program() -> Program:
    procs = [
        proc_sched_find(),
        proc_sched_list_remove_first(),
        proc_sched_bst_delete_leaf(),
        proc_sched_move_request(),
    ]
    return Program(sched_signature(), {p.name: p for p in procs})


METHODS = [
    "sched_move_request",
    "sched_list_remove_first",
    "sched_bst_delete_leaf",
    "sched_find",
]


def build_sched(keys):
    """Build an overlaid structure: FIFO list in insertion order + BST by
    key over the same nodes.  Returns (heap, list_head, bst_root)."""
    from fractions import Fraction

    from ..lang.semantics import Heap

    heap = Heap(sched_signature())
    nodes = [heap.new_object() for _ in keys]
    # list overlay in given order
    for i, (node, kv) in enumerate(zip(nodes, keys)):
        heap.write(node, "key", kv)
        heap.write(node, "next", nodes[i + 1] if i + 1 < len(nodes) else None)
        heap.write(node, "prev", nodes[i - 1] if i > 0 else None)
        heap.write(node, "llen", len(nodes) - i)
    # bst overlay by key
    root = None
    for node in nodes:
        if root is None:
            root = node
            continue
        cur = root
        while True:
            if heap.read(node, "key") < heap.read(cur, "key"):
                nxt = heap.read(cur, "l")
                if nxt is None:
                    heap.write(cur, "l", node)
                    heap.write(node, "p", cur)
                    break
            else:
                nxt = heap.read(cur, "r")
                if nxt is None:
                    heap.write(cur, "r", node)
                    heap.write(node, "p", cur)
                    break
            cur = nxt

    def measure(node, depth):
        if node is None:
            return
        heap.write(node, "rank", Fraction(1000 - depth))
        heap.write(node, "broot", root)
        l, r_ = heap.read(node, "l"), heap.read(node, "r")
        measure(l, depth + 1)
        measure(r_, depth + 1)
        mn = heap.read(l, "min") if l is not None else heap.read(node, "key")
        mx = heap.read(r_, "max") if r_ is not None else heap.read(node, "key")
        heap.write(node, "min", mn)
        heap.write(node, "max", mx)

    measure(root, 0)
    return heap, (nodes[0] if nodes else None), root
