"""Experiment registry: the Table 2 suite.

Maps every reproduced Table 2 row to its intrinsic definition, program and
methods, and computes the table's size columns from the ASTs:

- ``LC size``   -- conjunct count of the local condition(s),
- ``LoC``       -- executable statements of the method,
- ``Spec``      -- requires + ensures (+ modifies) conjuncts,
- ``Ann``       -- ghost annotations: monadic-map updates, broken-set
  macros, LC inferences/assertions, and loop invariants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

from ..core.ids import IntrinsicDefinition, conjunct_count
from ..lang.ast import (
    Procedure,
    Program,
    SAssert,
    SAssertLCAndRemove,
    SAssign,
    SBlock,
    SIf,
    SInferLCOutsideBr,
    SMut,
    SWhile,
    stmt_count,
)

__all__ = ["Experiment", "EXPERIMENTS", "method_sizes", "all_methods"]


@dataclass
class Experiment:
    structure: str
    ids_factory: Callable[[], IntrinsicDefinition]
    program_factory: Callable[[], Program]
    methods: List[str]
    notes: str = ""


def _lazy(modpath: str, name: str):
    def get():
        import importlib

        return getattr(importlib.import_module(modpath), name)()

    return get


EXPERIMENTS: List[Experiment] = [
    Experiment(
        "Singly-Linked List",
        _lazy("repro.structures.sll", "sll_ids"),
        _lazy("repro.structures.sll", "sll_program"),
        [
            "sll_append",
            "sll_copy_all",
            "sll_delete_all",
            "sll_find",
            "sll_insert_back",
            "sll_insert_front",
            "sll_insert",
            "sll_reverse",
        ],
    ),
    Experiment(
        "Sorted List",
        _lazy("repro.structures.sorted_list", "sorted_ids"),
        _lazy("repro.structures.sorted_list", "sorted_program"),
        ["sorted_delete_all", "sorted_find", "sorted_insert", "sorted_merge"],
    ),
    Experiment(
        "Sorted List (reversal)",
        _lazy("repro.structures.sorted_list", "sortedrev_ids"),
        _lazy("repro.structures.sorted_list", "sortedrev_program"),
        ["sorted_reverse"],
    ),
    Experiment(
        "Sorted List (w. min, max maps)",
        _lazy("repro.structures.sorted_list_minmax", "sortedmm_ids"),
        _lazy("repro.structures.sorted_list_minmax", "sortedmm_program"),
        ["sortedmm_concatenate", "sortedmm_find_last"],
    ),
    Experiment(
        "Circular List",
        _lazy("repro.structures.circular_list", "circular_ids"),
        _lazy("repro.structures.circular_list", "circular_program"),
        [
            "circ_insert_front",
            "circ_insert_back",
            "circ_delete_front",
            "circ_delete_back",
        ],
    ),
    Experiment(
        "Binary Search Tree",
        _lazy("repro.structures.bst", "bst_ids"),
        _lazy("repro.structures.bst", "bst_program"),
        ["bst_find", "bst_insert", "bst_delete", "bst_remove_root"],
    ),
    Experiment(
        "Treap",
        _lazy("repro.structures.treap", "treap_ids"),
        _lazy("repro.structures.treap", "treap_program"),
        ["treap_find", "treap_insert", "treap_delete", "treap_remove_root"],
    ),
    Experiment(
        "AVL Tree",
        _lazy("repro.structures.avl", "avl_ids"),
        _lazy("repro.structures.avl", "avl_program"),
        ["avl_insert", "avl_delete", "avl_balance", "avl_find_min"],
    ),
    Experiment(
        "Red-Black Tree",
        _lazy("repro.structures.rbt", "rbt_ids"),
        _lazy("repro.structures.rbt", "rbt_program"),
        ["rbt_insert", "rbt_insert_rec", "rbt_find_min"],
        notes="delete/fixups not reproduced (see EXPERIMENTS.md)",
    ),
    Experiment(
        "Scheduler Queue (overlaid SLL+BST)",
        _lazy("repro.structures.scheduler_queue", "sched_ids"),
        _lazy("repro.structures.scheduler_queue", "sched_program"),
        [
            "sched_move_request",
            "sched_list_remove_first",
            "sched_bst_delete_leaf",
            "sched_find",
        ],
    ),
]


def _annotation_count(proc: Procedure, ids: IntrinsicDefinition) -> int:
    """Ghost annotations: map updates, broken-set macros, invariants."""
    n = 0

    def go(stmts):
        nonlocal n
        for s in stmts:
            if isinstance(s, SMut):
                if ids.sig.is_ghost_field(s.field):
                    n += 1
            elif isinstance(s, (SAssertLCAndRemove, SInferLCOutsideBr, SAssert)):
                n += 1
            elif isinstance(s, SAssign) and (
                s.var in proc.ghost_locals or s.var.startswith("Br")
            ):
                n += 1
            elif isinstance(s, SIf):
                go(s.then)
                go(s.els)
            elif isinstance(s, SWhile):
                n += len(s.invariants)
                if s.decreases is not None:
                    n += 1
                go(s.body)
            elif isinstance(s, SBlock):
                go(s.stmts)

    go(proc.body)
    return n


def method_sizes(exp: Experiment, method: str) -> Tuple[int, int, int, int]:
    """(lc_size, loc, spec, annotations) for one Table 2 cell."""
    ids = exp.ids_factory()
    program = exp.program_factory()
    proc = program.proc(method)
    loc = stmt_count(proc.body)
    spec = sum(conjunct_count(e) for e in proc.requires + proc.ensures)
    if proc.modifies is not None:
        spec += 1
    ann = _annotation_count(proc, ids)
    return ids.lc_size, loc, spec, ann


def all_methods() -> List[Tuple[Experiment, str]]:
    return [(exp, m) for exp in EXPERIMENTS for m in exp.methods]
