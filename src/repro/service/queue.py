"""Admission control for the verification daemon.

The service's capacity story in one object: an :class:`AdmissionQueue`
decides, per incoming request, whether it runs now, waits its turn, or
is turned away -- before any verification work starts.  Three gates, in
order:

1. **per-client budget** -- a token bucket of *solve seconds* per
   ``X-Client-Id``.  A client starts with ``client_budget_s`` seconds of
   balance, refilled continuously at ``client_budget_s /
   budget_window_s`` per second (so the budget reads as "S solve-seconds
   per window").  Admission requires a *positive* balance; the actual
   wall seconds a request consumed are charged on completion (the
   balance may go negative -- an expensive request is never cut off
   mid-solve, it just pushes the client's next admission further out).
   An exhausted budget raises :class:`BudgetExhausted` carrying the
   ``Retry-After`` seconds until the balance is positive again.
2. **concurrency** -- at most ``max_inflight`` requests hold an
   execution slot at once.
3. **bounded FIFO queue** -- requests beyond the in-flight limit wait in
   arrival order, at most ``max_queue`` deep (:class:`QueueFull`
   otherwise -- load is shed at the door, never by stalling in-flight
   work), each for at most its deadline (:class:`QueueTimeout` after
   ``queue_timeout_s``).

Slots transfer FIFO: a completing request hands its slot directly to the
oldest waiter, so the queue can never be starved by fresh arrivals.
Everything is stdlib ``threading``; the clock is injectable for
deterministic tests.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Dict, Optional

__all__ = [
    "AdmissionError",
    "AdmissionQueue",
    "BudgetExhausted",
    "Draining",
    "QueueFull",
    "QueueTimeout",
    "TokenBucket",
]


class AdmissionError(Exception):
    """A request the queue refused; carries the HTTP-facing envelope."""

    status = 429
    code = "admission_rejected"

    def __init__(self, message: str, retry_after_s: Optional[float] = None):
        super().__init__(message)
        self.message = message
        self.retry_after_s = retry_after_s


class QueueFull(AdmissionError):
    status = 429
    code = "queue_full"


class BudgetExhausted(AdmissionError):
    status = 429
    code = "client_budget_exhausted"


class QueueTimeout(AdmissionError):
    status = 503
    code = "queue_timeout"


class Draining(AdmissionError):
    status = 503
    code = "draining"


class TokenBucket:
    """A continuous token bucket denominated in solve seconds.

    Not thread-safe on its own -- the owning queue's lock serializes
    access.  ``capacity_s`` is both the starting balance and the cap;
    ``refill_per_s`` tokens accrue per wall second (lazily, on read).
    """

    def __init__(
        self,
        capacity_s: float,
        refill_per_s: float,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.capacity_s = capacity_s
        self.refill_per_s = refill_per_s
        self.charged_s = 0.0
        self.requests = 0
        self._clock = clock
        self._balance = capacity_s
        self._at = clock()

    def balance(self) -> float:
        now = self._clock()
        self._balance = min(
            self.capacity_s, self._balance + (now - self._at) * self.refill_per_s
        )
        self._at = now
        return self._balance

    def charge(self, seconds: float) -> None:
        self.balance()  # settle accrual before the debit
        self._balance -= seconds
        self.charged_s += seconds

    def retry_after_s(self) -> float:
        """Seconds until the balance is positive again (0 if it is)."""
        balance = self.balance()
        if balance > 0:
            return 0.0
        if self.refill_per_s <= 0:
            return float("inf")
        return -balance / self.refill_per_s


class AdmissionQueue:
    """The daemon's admission gate; see the module docstring.

    Usage (always pair the calls, ``finally`` included)::

        queue.admit(client_id)         # raises an AdmissionError or returns
        try:
            ...  # do the work
        finally:
            queue.release(client_id, charge_s=elapsed)

    ``client_budget_s=None`` disables budgets entirely (every client is
    always admissible); ``max_queue=0`` makes the queue purely
    concurrency-gated (excess load is shed immediately).
    """

    def __init__(
        self,
        max_inflight: int = 2,
        max_queue: int = 16,
        client_budget_s: Optional[float] = None,
        budget_window_s: float = 60.0,
        queue_timeout_s: float = 30.0,
        drain_retry_after_s: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self.client_budget_s = client_budget_s
        self.budget_window_s = budget_window_s
        self.queue_timeout_s = queue_timeout_s
        # Hint for 503 draining rejections: how long a client should wait
        # before retrying (a restarting daemon is typically back within
        # its drain window).  None = no Retry-After header on draining.
        self.drain_retry_after_s = drain_retry_after_s
        self._clock = clock
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._inflight = 0
        self._waiting: deque = deque()  # FIFO of threading.Event tickets
        self._draining = False
        self._buckets: Dict[str, TokenBucket] = {}
        self.counters = {
            "received": 0,
            "admitted": 0,
            "completed": 0,
            "rejected_queue_full": 0,
            "rejected_budget": 0,
            "rejected_draining": 0,
            "queue_timeouts": 0,
        }

    # -- admission ----------------------------------------------------------

    def _bucket(self, client_id: str) -> Optional[TokenBucket]:
        if self.client_budget_s is None:
            return None
        bucket = self._buckets.get(client_id)
        if bucket is None:
            bucket = TokenBucket(
                self.client_budget_s,
                self.client_budget_s / self.budget_window_s,
                clock=self._clock,
            )
            self._buckets[client_id] = bucket
        return bucket

    def admit(self, client_id: str, deadline_s: Optional[float] = None) -> None:
        """Block until the request holds an execution slot, or raise.

        ``deadline_s`` overrides the queue-level wait deadline for this
        request.  Raises :class:`Draining`, :class:`BudgetExhausted`,
        :class:`QueueFull` or :class:`QueueTimeout`.
        """
        with self._lock:
            self.counters["received"] += 1
            if self._draining:
                self.counters["rejected_draining"] += 1
                raise Draining(
                    "server is draining; not accepting new requests",
                    retry_after_s=self.drain_retry_after_s,
                )
            bucket = self._bucket(client_id)
            if bucket is not None:
                bucket.requests += 1
                if bucket.balance() <= 0:
                    retry = bucket.retry_after_s()
                    self.counters["rejected_budget"] += 1
                    raise BudgetExhausted(
                        f"client {client_id!r} solve-time budget exhausted "
                        f"(balance {bucket.balance():.2f}s of "
                        f"{self.client_budget_s:g}s per {self.budget_window_s:g}s window)",
                        retry_after_s=retry,
                    )
            # Fast path: a free slot and nobody queued ahead of us.
            if self._inflight < self.max_inflight and not self._waiting:
                self._inflight += 1
                self.counters["admitted"] += 1
                return
            if len(self._waiting) >= self.max_queue:
                self.counters["rejected_queue_full"] += 1
                raise QueueFull(
                    f"queue full ({len(self._waiting)}/{self.max_queue} waiting, "
                    f"{self._inflight}/{self.max_inflight} in flight)"
                )
            ticket = threading.Event()
            self._waiting.append(ticket)
        # Wait outside the lock; release() hands the slot over by setting
        # the ticket (the slot is already ours then -- inflight was never
        # decremented).
        deadline = self.queue_timeout_s if deadline_s is None else deadline_s
        ticket.wait(deadline)
        with self._lock:
            if ticket.is_set():  # granted (possibly just after the timeout)
                self.counters["admitted"] += 1
                return
            self._waiting.remove(ticket)
            self.counters["queue_timeouts"] += 1
            raise QueueTimeout(
                f"request waited past its {deadline:g}s queue deadline"
            )

    def release(self, client_id: str, charge_s: float = 0.0) -> None:
        """Return a slot: charge the client, hand the slot FIFO onward."""
        with self._lock:
            bucket = self._bucket(client_id)
            if bucket is not None and charge_s > 0:
                bucket.charge(charge_s)
            self.counters["completed"] += 1
            if self._waiting:
                self._waiting.popleft().set()  # slot transfers, FIFO
            else:
                self._inflight -= 1
                if self._inflight == 0:
                    self._idle.notify_all()

    # -- drain --------------------------------------------------------------

    def begin_drain(self) -> None:
        """Stop admitting; already-queued and in-flight work finishes."""
        with self._lock:
            self._draining = True

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    def wait_idle(self, timeout_s: Optional[float] = None) -> bool:
        """Block until no request is in flight or queued; True if idle."""
        with self._idle:
            return self._idle.wait_for(
                lambda: self._inflight == 0 and not self._waiting,
                timeout=timeout_s,
            )

    # -- observability ------------------------------------------------------

    def snapshot(self) -> dict:
        """The /metrics view: counters, gauges, per-client budgets."""
        with self._lock:
            out = {
                "counters": dict(self.counters),
                "depth": len(self._waiting),
                "inflight": self._inflight,
                "max_queue": self.max_queue,
                "max_inflight": self.max_inflight,
                "queue_timeout_s": self.queue_timeout_s,
                "draining": self._draining,
                "budgets": {
                    "enabled": self.client_budget_s is not None,
                    "client_budget_s": self.client_budget_s,
                    "budget_window_s": self.budget_window_s,
                },
            }
            clients = {}
            for client_id, bucket in sorted(self._buckets.items()):
                clients[client_id] = {
                    "balance_s": round(bucket.balance(), 4),
                    "charged_s": round(bucket.charged_s, 4),
                    "requests": bucket.requests,
                }
            out["clients"] = clients
            return out
