"""Verification-as-a-service: the ``repro serve`` daemon.

The paper's pitch is *predictable* verification -- fixed-cost VC
generation cheap enough to run constantly.  This package is the serving
surface for that capability: a stdlib-only HTTP daemon wrapping one
shared :class:`~repro.engine.session.VerificationSession` (hot VC/plan
caches, persistent worker pool) behind admission control.

- :mod:`~repro.service.models` -- versioned request/response wire
  models with strict validation and typed error envelopes
- :mod:`~repro.service.queue`  -- the admission gate: bounded FIFO
  queue, in-flight cap, per-client token-bucket solve-time budgets
- :mod:`~repro.service.server` -- the HTTP endpoints (blocking verify,
  streamed JSONL verdicts, registry, metrics, health) and the graceful
  drain-then-exit lifecycle
"""

from .models import (
    SERVICE_SCHEMA_VERSION,
    ServiceError,
    ValidationError,
    VerifyRequest,
    VerifyResponse,
    schema_doc,
)
from .queue import (
    AdmissionError,
    AdmissionQueue,
    BudgetExhausted,
    Draining,
    QueueFull,
    QueueTimeout,
    TokenBucket,
)
from .server import ReproServer, ServeConfig, make_server, run_server

__all__ = [
    "SERVICE_SCHEMA_VERSION",
    "ServiceError",
    "ValidationError",
    "VerifyRequest",
    "VerifyResponse",
    "schema_doc",
    "AdmissionError",
    "AdmissionQueue",
    "BudgetExhausted",
    "Draining",
    "QueueFull",
    "QueueTimeout",
    "TokenBucket",
    "ReproServer",
    "ServeConfig",
    "make_server",
    "run_server",
]
