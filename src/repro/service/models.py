"""Wire models of the verification service: requests, responses, errors.

Everything the daemon reads or writes over HTTP is defined here, with
one schema version stamp per surface:

- :class:`VerifyRequest` -- the ``POST /v1/verify[/stream]`` body:
  registry selectors (``structure`` / ``methods`` / ``all``), an
  optional backend pin, and per-request budget overrides.  Parsing is
  *strict*: unknown keys, wrong types, and empty selections are
  :class:`ValidationError`\\ s (HTTP 400), never silently ignored -- a
  typo'd ``"methdos"`` must not quietly verify nothing.
- :class:`VerifyResponse` -- the blocking response and the stream's
  terminal summary line.  Its JSON is deliberately the *same document*
  ``repro verify --format json`` prints (``schema_version`` 7,
  ``command: "verify"``), extended with a ``service`` block
  (:data:`SERVICE_SCHEMA_VERSION`), so ``benchmarks/check_schema.py``
  validates both surfaces with one checker.
- :class:`ServiceError` -- the typed error envelope: every non-2xx
  response body is ``{"schema_version": 1, "error": {"code", "message"
  [, "retry_after_s"]}}`` with a stable machine-readable ``code``.

:func:`schema_doc` renders the whole contract (endpoints, request
fields, error codes) as a JSON document served at ``GET /v1/schema``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..engine.events import VerificationResult

__all__ = [
    "SERVICE_SCHEMA_VERSION",
    "RESULT_SCHEMA_VERSION",
    "ServiceError",
    "ValidationError",
    "VerifyRequest",
    "VerifyResponse",
    "schema_doc",
    "verdicts_equal",
    "ERROR_CODES",
]

#: Version of the service's own wire surfaces (request body, error
#: envelope, /metrics, /healthz, /v1/registry, /v1/schema).
SERVICE_SCHEMA_VERSION = 1

#: Version of the shared result-document schema (the CLI's
#: ``verify --format json`` / bench_results.json lineage).
RESULT_SCHEMA_VERSION = 8


class ServiceError(Exception):
    """An HTTP-facing failure with a stable error code.

    ``status`` is the HTTP status to send, ``code`` the machine-readable
    discriminator, ``retry_after_s`` (when set) additionally becomes a
    ``Retry-After`` header.
    """

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        retry_after_s: Optional[float] = None,
    ):
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message
        self.retry_after_s = retry_after_s

    def to_json(self) -> dict:
        error = {"code": self.code, "message": self.message}
        if self.retry_after_s is not None:
            error["retry_after_s"] = round(self.retry_after_s, 3)
        return {"schema_version": SERVICE_SCHEMA_VERSION, "error": error}


class ValidationError(ServiceError):
    """A malformed request body (HTTP 400)."""

    def __init__(self, message: str):
        super().__init__(400, "invalid_request", message)


_REQUEST_FIELDS = {
    "structure": "optional str: restrict to one registry structure",
    "methods": "optional [str, ...]: restrict to named methods",
    "all": "optional bool: select every registry method",
    "backend": "optional str: must equal the backend the daemon serves",
    "timeout_s": "optional positive number: per-VC wall-clock timeout",
    "method_budget_s": "optional positive number: per-method wall-clock budget",
    "client": "optional str: client id (X-Client-Id header wins if both set)",
}


def _opt_positive(doc: dict, key: str) -> Optional[float]:
    value = doc.get(key)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValidationError(f"{key!r} must be a number, got {type(value).__name__}")
    if value <= 0:
        raise ValidationError(f"{key!r} must be positive, got {value!r}")
    return float(value)


def _opt_str(doc: dict, key: str) -> Optional[str]:
    value = doc.get(key)
    if value is None:
        return None
    if not isinstance(value, str) or not value:
        raise ValidationError(f"{key!r} must be a non-empty string")
    return value


@dataclass(frozen=True)
class VerifyRequest:
    """A validated ``POST /v1/verify[/stream]`` body."""

    structure: Optional[str] = None
    methods: Tuple[str, ...] = ()
    all: bool = False
    backend: Optional[str] = None
    timeout_s: Optional[float] = None
    method_budget_s: Optional[float] = None
    client: Optional[str] = None

    @classmethod
    def from_json(cls, doc: object) -> "VerifyRequest":
        """Strictly parse a request body; :class:`ValidationError` on any
        unknown key, type mismatch, or empty selection."""
        if not isinstance(doc, dict):
            raise ValidationError(
                f"request body must be a JSON object, got {type(doc).__name__}"
            )
        unknown = sorted(set(doc) - set(_REQUEST_FIELDS))
        if unknown:
            known = ", ".join(sorted(_REQUEST_FIELDS))
            raise ValidationError(
                f"unknown field(s) {', '.join(repr(k) for k in unknown)} "
                f"(known: {known})"
            )
        all_ = doc.get("all", False)
        if not isinstance(all_, bool):
            raise ValidationError(f"'all' must be a bool, got {type(all_).__name__}")
        methods = doc.get("methods", [])
        if not isinstance(methods, list) or not all(
            isinstance(m, str) and m for m in methods
        ):
            raise ValidationError("'methods' must be a list of non-empty strings")
        request = cls(
            structure=_opt_str(doc, "structure"),
            methods=tuple(methods),
            all=all_,
            backend=_opt_str(doc, "backend"),
            timeout_s=_opt_positive(doc, "timeout_s"),
            method_budget_s=_opt_positive(doc, "method_budget_s"),
            client=_opt_str(doc, "client"),
        )
        if not request.all and request.structure is None and not request.methods:
            raise ValidationError(
                "empty selection: pass 'all': true, a 'structure', or 'methods'"
            )
        return request

    def to_json(self) -> dict:
        out: dict = {}
        if self.structure is not None:
            out["structure"] = self.structure
        if self.methods:
            out["methods"] = list(self.methods)
        if self.all:
            out["all"] = True
        if self.backend is not None:
            out["backend"] = self.backend
        if self.timeout_s is not None:
            out["timeout_s"] = self.timeout_s
        if self.method_budget_s is not None:
            out["method_budget_s"] = self.method_budget_s
        if self.client is not None:
            out["client"] = self.client
        return out


@dataclass
class VerifyResponse:
    """The blocking-response / stream-summary document for one request.

    ``rows`` are ``(structure, method, VerificationResult, status)``
    exactly as the CLI's verify path produces them.
    """

    rows: List[tuple]
    wall_s: float
    jobs: int
    backend: str
    simplify: bool
    batch: bool
    client: str

    @property
    def ok(self) -> bool:
        return all(status == "verified" for *_r, status in self.rows)

    def to_json(self) -> dict:
        results = []
        for _structure, _method, result, status in self.rows:
            results.append(dict(result.to_json(), status=status))
        return {
            # The shared result-document schema: identical required keys
            # to `repro verify --format json`, so check_schema.py's
            # check_report validates service responses unchanged.
            "schema_version": RESULT_SCHEMA_VERSION,
            "command": "verify",
            "jobs": self.jobs,
            "backend": self.backend,
            "simplify": self.simplify,
            "batch": self.batch,
            "wall_s": round(self.wall_s, 3),
            "n_methods": len(results),
            "n_verified": sum(1 for r in results if r["status"] == "verified"),
            "results": results,
            "service": {
                "schema_version": SERVICE_SCHEMA_VERSION,
                "client": self.client,
            },
        }


def verdicts_equal(a: VerificationResult, b: VerificationResult) -> bool:
    """Verdict-level equality of two results (order-sensitive), used by
    parity tests and the CI gate: same ok bit, same per-VC statuses."""
    return (
        a.ok == b.ok
        and a.n_vcs == b.n_vcs
        and [v.status for v in a.verdicts] == [v.status for v in b.verdicts]
        and a.failed == b.failed
    )


#: Stable error codes the daemon emits, with the HTTP status each rides on.
ERROR_CODES = {
    "invalid_request": 400,
    "unknown_selection": 400,
    "backend_unsupported": 400,
    "not_found": 404,
    "method_not_allowed": 405,
    "payload_too_large": 413,
    "queue_full": 429,
    "client_budget_exhausted": 429,
    "queue_timeout": 503,
    "draining": 503,
    "internal_error": 500,
}


def schema_doc() -> dict:
    """The machine-readable service contract (``GET /v1/schema``)."""
    return {
        "schema_version": SERVICE_SCHEMA_VERSION,
        "result_schema_version": RESULT_SCHEMA_VERSION,
        "endpoints": {
            "POST /v1/verify": "blocking verification; body = verify request, "
                               "response = result document (schema_version "
                               f"{RESULT_SCHEMA_VERSION})",
            "POST /v1/verify/stream": "chunked application/x-ndjson: one VcEvent "
                                      "per line as verdicts land, then one "
                                      '{"kind": "summary", ...result document} line',
            "GET /healthz": "liveness + drain state",
            "GET /v1/registry": "verifiable structures/methods and backends",
            "GET /v1/schema": "this document",
            "GET /metrics": "requests, queue depth, in-flight, per-client "
                            "budgets, cache hit rates, per-backend solve seconds",
        },
        "request_fields": dict(_REQUEST_FIELDS),
        "headers": {
            "X-Client-Id": "budget accounting key; unset clients share the "
                           "'anonymous' bucket",
        },
        "error_envelope": {
            "schema_version": SERVICE_SCHEMA_VERSION,
            "error": {"code": "str (stable)", "message": "str",
                      "retry_after_s": "number, only on 429/503 backpressure"},
        },
        "error_codes": dict(ERROR_CODES),
    }
