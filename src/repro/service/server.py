"""The ``repro serve`` daemon: verification-as-a-service over HTTP.

A stdlib-only long-lived server (``http.server.ThreadingHTTPServer`` +
``json``; zero new dependencies, like everything else in this repo)
that turns the session engine into a multi-tenant service:

- **one shared** :class:`~repro.engine.session.VerificationSession`
  behind its submission lock -- every tenant hits the same hot VC/plan
  caches and persistent worker pool, so the second client asking for a
  method the first just verified is served warm from cache;
- an :class:`~repro.service.queue.AdmissionQueue` in front of it --
  bounded FIFO queue, in-flight cap, per-client solve-second budgets
  keyed by the ``X-Client-Id`` header (429 + ``Retry-After`` on
  exhaustion);
- verdicts streamed as they land: ``POST /v1/verify/stream`` answers
  with chunked JSONL, one :class:`~repro.engine.events.VcEvent` per
  line (the same wire form as ``repro verify --events``) and a terminal
  ``{"kind": "summary", ...}`` result document;
- graceful drain on SIGTERM/SIGINT: new requests get 503
  ``draining``, queued and in-flight work finishes, then the session
  closes -- which runs the cache lifecycle sweep when
  ``--cache-max-mb`` / ``--cache-max-age-days`` budgets are set.

Endpoints and schemas are documented in
:func:`repro.service.models.schema_doc` (served at ``GET /v1/schema``)
and the README's "Service" section.
"""

from __future__ import annotations

import json
import signal
import sys
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional

from ..engine import faults
from ..engine.session import VerificationSession
from .models import (
    SERVICE_SCHEMA_VERSION,
    ServiceError,
    ValidationError,
    VerifyRequest,
    VerifyResponse,
    schema_doc,
)
from .queue import AdmissionError, AdmissionQueue

__all__ = ["ServeConfig", "ReproServer", "make_server", "run_server"]

#: Largest accepted request body; a verify request is a few hundred
#: bytes, so anything near this size is a client bug, not a workload.
MAX_BODY_BYTES = 1 << 20


@dataclass
class ServeConfig:
    """Daemon knobs, CLI-flag for CLI-flag."""

    host: str = "127.0.0.1"
    port: int = 8765
    max_inflight: int = 2
    max_queue: int = 16
    client_budget_s: Optional[float] = None
    budget_window_s: float = 60.0
    queue_timeout_s: float = 30.0
    drain_timeout_s: float = 60.0
    quiet: bool = False


class _Metrics:
    """Handler-level counters and solve-second accounting (thread-safe)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.started = time.time()
        self.http = {
            "validation_errors": 0,
            "selection_errors": 0,
            "internal_errors": 0,
            "streams": 0,
            "responses": 0,
        }
        self.methods = {"verified": 0, "budget": 0, "FAILED": 0, "error": 0}
        self.solve_seconds: Dict[str, float] = {}

    def count_http(self, key: str) -> None:
        with self._lock:
            self.http[key] += 1

    def count_rows(self, rows, backend: str) -> None:
        with self._lock:
            for _structure, _method, result, status in rows:
                if status.startswith("error:"):
                    self.methods["error"] += 1
                else:
                    self.methods[status] = self.methods.get(status, 0) + 1
                self.solve_seconds[backend] = (
                    self.solve_seconds.get(backend, 0.0) + result.solve_s
                )

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "uptime_s": round(time.time() - self.started, 3),
                "http": dict(self.http),
                "methods": dict(self.methods),
                "solve_seconds_by_backend": {
                    backend: round(seconds, 4)
                    for backend, seconds in sorted(self.solve_seconds.items())
                },
            }


class ReproServer(ThreadingHTTPServer):
    """ThreadingHTTPServer + the shared session, queue and metrics."""

    daemon_threads = True  # a hung client never blocks process exit

    def __init__(self, config: ServeConfig, session: VerificationSession):
        super().__init__((config.host, config.port), _Handler)
        self.config = config
        self.session = session
        self.queue = AdmissionQueue(
            max_inflight=config.max_inflight,
            max_queue=config.max_queue,
            client_budget_s=config.client_budget_s,
            budget_window_s=config.budget_window_s,
            queue_timeout_s=config.queue_timeout_s,
            drain_retry_after_s=config.drain_timeout_s,
        )
        self.metrics = _Metrics()
        self._drain_started = threading.Event()
        self.drained_clean = False

    # -- shutdown -----------------------------------------------------------

    def begin_drain(self) -> None:
        """Start the graceful exit: reject new work, finish what's
        admitted, then stop the server loop.  Idempotent; safe to call
        from a signal handler (the wait runs on a helper thread)."""
        if self._drain_started.is_set():
            return
        self._drain_started.set()
        self.queue.begin_drain()

        def _drain_then_stop() -> None:
            self.drained_clean = self.queue.wait_idle(self.config.drain_timeout_s)
            self.shutdown()  # unblocks serve_forever()

        threading.Thread(target=_drain_then_stop, daemon=True).start()

    @property
    def draining(self) -> bool:
        return self._drain_started.is_set()


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server: ReproServer  # narrowed for readability; set by the server

    # -- plumbing -----------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.server.config.quiet:
            sys.stderr.write(
                f"serve: {self.address_string()} {format % args}\n"
            )

    def _send_json(
        self,
        status: int,
        doc: dict,
        retry_after_s: Optional[float] = None,
        close: bool = False,
    ) -> None:
        body = (json.dumps(doc, indent=2) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after_s is not None:
            self.send_header("Retry-After", str(max(1, int(retry_after_s + 0.5))))
        if close:
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(body)

    def _send_error_envelope(self, error: ServiceError) -> None:
        self._send_json(error.status, error.to_json(),
                        retry_after_s=error.retry_after_s)

    def _client_id(self, request: Optional[VerifyRequest] = None) -> str:
        header = self.headers.get("X-Client-Id")
        if header:
            return header.strip()
        if request is not None and request.client:
            return request.client
        return "anonymous"

    def _read_request(self) -> VerifyRequest:
        length_header = self.headers.get("Content-Length")
        try:
            length = int(length_header or 0)
        except ValueError:
            raise ValidationError(
                f"bad Content-Length {length_header!r}"
            ) from None
        if length <= 0:
            raise ValidationError("request body required")
        if length > MAX_BODY_BYTES:
            raise ServiceError(413, "payload_too_large",
                               f"body of {length} bytes exceeds {MAX_BODY_BYTES}")
        raw = self.rfile.read(length)
        try:
            doc = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as e:
            raise ValidationError(f"body is not valid JSON: {e}") from None
        return VerifyRequest.from_json(doc)

    # -- GET ----------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        routes = {
            "/healthz": self._get_healthz,
            "/metrics": self._get_metrics,
            "/v1/registry": self._get_registry,
            "/v1/schema": self._get_schema,
        }
        handler = routes.get(self.path.split("?", 1)[0])
        if handler is None:
            self._send_error_envelope(
                ServiceError(404, "not_found", f"no such endpoint {self.path!r}")
            )
            return
        handler()

    def _get_healthz(self) -> None:
        server = self.server
        self._send_json(200, {
            "schema_version": SERVICE_SCHEMA_VERSION,
            "status": "draining" if server.draining else "ok",
            "uptime_s": round(time.time() - server.metrics.started, 3),
            "backend": server.session.backend_spec,
        })

    def _get_schema(self) -> None:
        self._send_json(200, schema_doc())

    def _get_registry(self) -> None:
        from ..engine.backends import available_backends
        from ..structures.registry import EXPERIMENTS

        structures = [
            {"structure": exp.structure, "methods": list(exp.methods)}
            for exp in EXPERIMENTS
        ]
        self._send_json(200, {
            "schema_version": SERVICE_SCHEMA_VERSION,
            "structures": structures,
            "n_methods": sum(len(s["methods"]) for s in structures),
            "backends": available_backends(),
            "serving_backend": self.server.session.backend_spec,
        })

    def _get_metrics(self) -> None:
        server = self.server
        session = server.session
        cache: dict = {"enabled": session.cache_dir is not None}
        if session.cache_dir is not None:
            from ..engine.cachectl import cache_stats

            cache["tiers"] = cache_stats(session.cache_dir)
        doc = {
            "schema_version": SERVICE_SCHEMA_VERSION,
            "service": {
                "backend": session.backend_spec,
                "jobs": session.jobs,
                "draining": server.draining,
            },
            "queue": server.queue.snapshot(),
            "cache": cache,
        }
        doc.update(server.metrics.snapshot())
        self._send_json(200, doc)

    # -- POST ---------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        try:
            faults.maybe_os_error("handler", token=self.path)
        except OSError as e:
            self.server.metrics.count_http("internal_errors")
            self._send_error_envelope(
                ServiceError(500, "internal_error", f"handler fault: {e}")
            )
            return
        path = self.path.split("?", 1)[0]
        if path not in ("/v1/verify", "/v1/verify/stream"):
            self._send_error_envelope(
                ServiceError(404, "not_found", f"no such endpoint {self.path!r}")
            )
            return
        stream = path.endswith("/stream")
        try:
            request = self._read_request()
            selection = self._resolve(request)
        except ServiceError as error:
            self.server.metrics.count_http("validation_errors")
            self._send_error_envelope(error)
            return
        client_id = self._client_id(request)
        try:
            self.server.queue.admit(client_id)
        except AdmissionError as error:
            self._send_error_envelope(
                ServiceError(error.status, error.code, error.message,
                             retry_after_s=error.retry_after_s)
            )
            return
        start = time.perf_counter()
        try:
            self._run_verify(request, selection, stream, client_id)
        finally:
            self.server.queue.release(
                client_id, charge_s=time.perf_counter() - start
            )

    def _resolve(self, request: VerifyRequest):
        """Registry selection + backend pin; ServiceError on mismatch."""
        from ..cli import SelectionError, _select

        session = self.server.session
        if request.backend is not None and request.backend != session.backend_spec:
            raise ServiceError(
                400, "backend_unsupported",
                f"this daemon serves backend {session.backend_spec!r}, "
                f"not {request.backend!r}",
            )
        try:
            selection = _select(request.structure, list(request.methods), request.all)
        except SelectionError as e:
            raise ServiceError(400, "unknown_selection", str(e)) from None
        if not selection:
            # _select returns [] only for the no-selector case, which
            # VerifyRequest.from_json already rejects; keep the guard for
            # defense in depth.
            raise ValidationError("selection matched no methods")
        return selection

    def _run_verify(self, request, selection, stream: bool, client_id: str) -> None:
        from ..cli import _safe_verify

        server = self.server
        session = server.session
        chunks = _ChunkedJsonl(self) if stream else None
        if chunks is not None:
            server.metrics.count_http("streams")
            self.send_response(200)
            self.send_header("Content-Type", "application/x-ndjson")
            self.send_header("Transfer-Encoding", "chunked")
            self.send_header("Connection", "close")
            self.close_connection = True
            self.end_headers()
        rows = []
        start = time.perf_counter()
        try:
            for exp, method in selection:
                result, status = _safe_verify(
                    session, exp, method,
                    events_sink=chunks.event if chunks is not None else None,
                    timeout_s=request.timeout_s,
                    method_budget_s=request.method_budget_s,
                )
                rows.append((exp.structure, method, result, status))
        except _ClientGone:
            # The tenant hung up mid-stream.  The in-flight method was
            # already drained by _safe_verify's event loop ending only
            # when the run does, so shared state is consistent; just
            # stop writing.
            server.metrics.count_rows(rows, session.backend_spec)
            return
        wall = time.perf_counter() - start
        server.metrics.count_rows(rows, session.backend_spec)
        response = VerifyResponse(
            rows=rows,
            wall_s=wall,
            jobs=session.jobs,
            backend=session.backend_spec,
            simplify=session.simplify,
            batch=session.batch,
            client=client_id,
        )
        server.metrics.count_http("responses")
        if chunks is not None:
            try:
                chunks.line(dict({"kind": "summary"}, **response.to_json()))
                chunks.finish()
            except _ClientGone:
                pass
        else:
            self._send_json(200, response.to_json())


class _ClientGone(Exception):
    """The HTTP client disconnected mid-stream."""


class _ChunkedJsonl:
    """Chunked transfer encoding, one JSON document per line."""

    def __init__(self, handler: _Handler):
        self.handler = handler

    def _write(self, payload: bytes) -> None:
        try:
            self.handler.wfile.write(
                f"{len(payload):x}\r\n".encode("ascii") + payload + b"\r\n"
            )
            self.handler.wfile.flush()
        except (BrokenPipeError, ConnectionResetError, OSError) as e:
            raise _ClientGone(str(e)) from None

    def line(self, doc: dict) -> None:
        self._write(json.dumps(doc, separators=(",", ":")).encode("utf-8") + b"\n")

    def event(self, event) -> None:
        self.line(event.to_json())

    def finish(self) -> None:
        self._write(b"")  # the terminal zero-length chunk


def make_server(session: VerificationSession, config: ServeConfig) -> ReproServer:
    """Bind the daemon (``config.port`` 0 = ephemeral, for tests)."""
    return ReproServer(config, session)


def run_server(
    session: VerificationSession,
    config: ServeConfig,
    install_signal_handlers: bool = True,
) -> int:
    """Serve until drained; returns the CLI exit code.

    SIGTERM/SIGINT trigger the graceful drain: stop admitting, let
    queued + in-flight requests finish (up to ``drain_timeout_s``),
    stop the listener, close the session -- which runs the cache
    lifecycle sweep when the session has cache budgets configured.
    """
    try:
        server = make_server(session, config)
    except OSError as e:
        print(f"serve: cannot bind {config.host}:{config.port}: {e}",
              file=sys.stderr)
        return 2

    if install_signal_handlers:
        def _on_signal(_signum, _frame):
            server.begin_drain()

        signal.signal(signal.SIGTERM, _on_signal)
        signal.signal(signal.SIGINT, _on_signal)

    host, port = server.server_address[:2]
    if not config.quiet:
        print(
            f"serve: listening on http://{host}:{port} "
            f"(backend={session.backend_spec}, jobs={session.jobs}, "
            f"max_inflight={config.max_inflight}, max_queue={config.max_queue}, "
            f"client_budget_s={config.client_budget_s})",
            file=sys.stderr,
        )
    try:
        server.serve_forever(poll_interval=0.2)
    finally:
        server.server_close()
        session.close()
        if not config.quiet:
            print("serve: drained, session closed", file=sys.stderr)
    return 0
